# CI gates for the ecndelay reproduction. `make ci` is the full gate;
# `make race` is the correctness gate for the concurrent sweep engine.

GO ?= go

.PHONY: ci build vet fmt lint test race bench bench-smoke determinism obs-ab \
	audit-ab telemetry-smoke obsreport-gate topo-smoke shard-smoke \
	fleet-smoke cover hybrid-gate

ci: fmt vet lint build test race bench-smoke determinism obs-ab audit-ab \
	telemetry-smoke obsreport-gate topo-smoke shard-smoke fleet-smoke \
	cover hybrid-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static-analysis gate beyond `go vet`. staticcheck failures fail CI;
# govulncheck is advisory (known vulns in the toolchain's stdlib should
# not block a simulation PR, but the report lands in the log). Either
# tool being absent from the environment skips its half with a notice —
# the gate never requires a network install.
lint:
	@if command -v staticcheck > /dev/null 2>&1; then \
		staticcheck ./... && echo "lint: staticcheck clean"; \
	else echo "lint: staticcheck not installed; skipping"; fi
	@if command -v govulncheck > /dev/null 2>&1; then \
		govulncheck ./... || echo "lint: govulncheck reported findings (advisory)"; \
	else echo "lint: govulncheck not installed; skipping"; fi

test:
	$(GO) test -timeout 5m ./...

# Race gate over the whole module, with no exclusions: the sweep engine,
# the shared observer and the telemetry server are the concurrent paths,
# but every package rides along so a new data race anywhere fails CI.
# -short trims internal/fluid's numeric-integration horizons (it is
# single-goroutine, so the detector loses nothing) to keep the whole
# suite inside the timeout under the -race slowdown.
race:
	$(GO) test -race -short -timeout 15m ./...

bench:
	$(GO) test -bench=Sweep -run='^$$' .

# Alloc-regression gate: run the hot-path microbenchmarks once and the
# AllocsPerRun guards that pin the steady-state paths at 0 allocs/op —
# both with observability off (the hooks must be free) and with a full
# observer attached (counters, tracer, checker must not allocate either).
bench-smoke:
	$(GO) test -timeout 5m -run='^$$' -bench='HandlerEvents|ClosureEvents|PortChain' \
		-benchmem -benchtime=1x ./internal/des ./internal/netsim
	$(GO) test -timeout 5m -run='AllocFree' ./internal/des ./internal/netsim ./internal/obs

# Determinism gate: a faulty packet-level run (loss + feedback loss +
# go-back-N recovery) executed twice must produce byte-identical output.
determinism:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 \
		-loss 1e-3 -ctrl-loss 1e-2 -recovery -seed 7 -fault-seed 42 > "$$tmp/a.tsv"; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 \
		-loss 1e-3 -ctrl-loss 1e-2 -recovery -seed 7 -fault-seed 42 > "$$tmp/b.tsv"; \
	cmp "$$tmp/a.tsv" "$$tmp/b.tsv" && echo "determinism: faulty run reproduces byte-for-byte"

# Observability A/B gate: attaching the full observer (metrics + trace +
# probes + invariants) must not change the simulation — the same seeded
# run with and without the obs flags must print byte-identical results,
# and the observed run must finish with zero invariant violations (a
# non-zero packetsim exit fails the gate).
obs-ab:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 -seed 7 > "$$tmp/off.tsv"; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 -seed 7 \
		-metrics "$$tmp/metrics.tsv" -trace "$$tmp/trace.jsonl" \
		-probe "$$tmp/probe.jsonl" -hist "$$tmp/hist.jsonl" -invariants > "$$tmp/on.tsv"; \
	cmp "$$tmp/off.tsv" "$$tmp/on.tsv"; \
	for f in metrics.tsv trace.jsonl probe.jsonl hist.jsonl; do \
		[ -s "$$tmp/$$f" ] || { echo "obs-ab: $$f is empty"; exit 1; }; done; \
	$(GO) run ./cmd/packetsim -topology clos -radix 4 -tiers 3 -n 6 \
		-horizon 0.003 -seed 7 > "$$tmp/clos-off.tsv"; \
	$(GO) run ./cmd/packetsim -topology clos -radix 4 -tiers 3 -n 6 \
		-horizon 0.003 -seed 7 -metrics "$$tmp/clos-metrics.tsv" \
		-trace "$$tmp/clos-trace.jsonl" -invariants > "$$tmp/clos-on.tsv"; \
	cmp "$$tmp/clos-off.tsv" "$$tmp/clos-on.tsv"; \
	echo "obs-ab: observer is invisible to the run (outputs byte-identical, invariants clean)"

# Audit A/B gate, three promises of the control-loop audit trail:
# (1) attaching -audit leaves the run's stdout byte-identical (the trail
# is pure observation); (2) the audit export itself reproduces
# byte-for-byte across reruns (both runs use the same relative -audit
# path from different directories so even the header's flag echo
# matches); (3) ccreport's -require-attributed gate holds — every rate
# cut in a fault-free run names the mark episode that caused it.
audit-ab:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/packetsim" ./cmd/packetsim; \
	$(GO) build -o "$$tmp/ccreport" ./cmd/ccreport; \
	mkdir "$$tmp/a" "$$tmp/b"; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 -seed 7 > "$$tmp/off.tsv"; \
	(cd "$$tmp/a" && ./../packetsim -proto dcqcn -n 4 -horizon 0.02 -seed 7 \
		-audit audit.jsonl > on.tsv); \
	(cd "$$tmp/b" && ./../packetsim -proto dcqcn -n 4 -horizon 0.02 -seed 7 \
		-audit audit.jsonl > on.tsv); \
	cmp "$$tmp/off.tsv" "$$tmp/a/on.tsv" \
		|| { echo "audit-ab: -audit perturbed the run"; exit 1; }; \
	cmp "$$tmp/a/audit.jsonl" "$$tmp/b/audit.jsonl" \
		|| { echo "audit-ab: audit export is not reproducible"; exit 1; }; \
	"$$tmp/ccreport" -audit "$$tmp/a/audit.jsonl" -require-attributed > "$$tmp/report.txt" \
		|| { echo "audit-ab: unattributed rate cuts"; cat "$$tmp/report.txt"; exit 1; }; \
	grep -q ' 0 unattributed; ' "$$tmp/report.txt" \
		|| { echo "audit-ab: report shape unexpected"; cat "$$tmp/report.txt"; exit 1; }; \
	echo "audit-ab: -audit invisible to the run, export reproducible, cuts fully attributed"

# Fabric smoke gate: a tiny 3-tier Clos incast with PFC and the invariant
# checker attached. packetsim exits non-zero if conservation or queue-bound
# invariants are violated anywhere in the 20-switch fabric, and the same
# seeded ECMP run must reproduce byte-for-byte.
topo-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -topology clos -radix 4 -tiers 3 -n 6 \
		-horizon 0.003 -seed 7 -pfc-pause 50000 -pfc-resume 25000 \
		-pfc-watchdog 1e-4 -invariants > "$$tmp/a.tsv" \
		|| { echo "topo-smoke: invariant violation on the Clos incast"; exit 1; }; \
	$(GO) run ./cmd/packetsim -topology clos -radix 4 -tiers 3 -n 6 \
		-horizon 0.003 -seed 7 -pfc-pause 50000 -pfc-resume 25000 \
		-pfc-watchdog 1e-4 -invariants > "$$tmp/b.tsv"; \
	cmp "$$tmp/a.tsv" "$$tmp/b.tsv"; \
	grep -q 'pause_storms=' "$$tmp/a.tsv" \
		|| { echo "topo-smoke: watchdog reported no fault summary"; exit 1; }; \
	echo "topo-smoke: Clos incast clean under invariants, ECMP deterministic"

# Sharded-engine gate: the same seeded Clos incast on the serial engine
# and on 4 shards, both under the invariant checker (which audits cross-
# shard byte conservation per mailbox edge in the sharded run). The TSV
# bodies must match byte-for-byte — the sharded output differs only by
# its one-line partition header, which is stripped before the diff. The
# -race side of sharding is covered by `make race` (the -short suite
# keeps TestShardedRunUnderRace, a 4-shard Clos incast, enabled).
shard-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -proto timely -topology clos -radix 4 -tiers 3 \
		-n 6 -horizon 0.003 -seed 7 -invariants > "$$tmp/serial.tsv" \
		|| { echo "shard-smoke: invariant violation on the serial run"; exit 1; }; \
	$(GO) run ./cmd/packetsim -proto timely -topology clos -radix 4 -tiers 3 \
		-n 6 -horizon 0.003 -seed 7 -invariants -shards 4 > "$$tmp/sharded.tsv" \
		|| { echo "shard-smoke: invariant violation on the 4-shard run"; exit 1; }; \
	grep -q '^# shards: 4 effective' "$$tmp/sharded.tsv" \
		|| { echo "shard-smoke: run fell back to fewer than 4 shards"; exit 1; }; \
	tail -n +2 "$$tmp/sharded.tsv" > "$$tmp/sharded-body.tsv"; \
	cmp "$$tmp/serial.tsv" "$$tmp/sharded-body.tsv" \
		|| { echo "shard-smoke: sharded trajectory diverged from serial"; exit 1; }; \
	echo "shard-smoke: 4-shard Clos incast byte-identical to serial, invariants clean"

# Telemetry smoke gate: boot packetsim with -serve on an ephemeral port,
# scrape /metrics and /progress mid-run, and require both to answer with
# real content before the run is killed.
telemetry-smoke:
	@tmp=$$(mktemp -d); trap 'kill $$pid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/packetsim" ./cmd/packetsim; \
	"$$tmp/packetsim" -proto dcqcn -n 4 -horizon 5 -seed 7 -serve 127.0.0.1:0 \
		> /dev/null 2> "$$tmp/log" & pid=$$!; \
	addr=""; for i in $$(seq 1 50); do \
		addr=$$(sed -n 's|.*serving telemetry on http://||p' "$$tmp/log" | head -1); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	[ -n "$$addr" ] || { echo "telemetry-smoke: server never announced its address"; cat "$$tmp/log"; exit 1; }; \
	curl -sf "http://$$addr/metrics" | grep -q '^ecndelay_' \
		|| { echo "telemetry-smoke: /metrics served no ecndelay_ series"; exit 1; }; \
	curl -sf "http://$$addr/progress" | grep -q '"sim_time_s"' \
		|| { echo "telemetry-smoke: /progress served no sim_time_s"; exit 1; }; \
	echo "telemetry-smoke: /metrics and /progress answer mid-run"

# Fleet chaos gate: a coordinator plus two workers on localhost, with
# one worker SIGKILLed mid-shard (0.5s after its first lease grant, a
# fraction of one packet-level job) so its lease expires and the shard
# is re-queued to the survivor. The merged, finalized checkpoint must
# be byte-identical to a serial -workers 1 run of the same grid, and
# the coordinator log must show the expired lease — proof the kill
# landed mid-run rather than after the grid drained.
fleet-smoke:
	@tmp=$$(mktemp -d); trap 'kill $$cpid $$w1 $$w2 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/sweep" ./cmd/sweep; \
	"$$tmp/sweep" -kind exp -exp fig14 -seeds 1:6 -workers 1 \
		-out "$$tmp/serial.jsonl" > /dev/null 2>&1 \
		|| { echo "fleet-smoke: serial reference run failed"; exit 1; }; \
	"$$tmp/sweep" -coordinator 127.0.0.1:0 -kind exp -exp fig14 -seeds 1:6 \
		-lease-ttl 1s -shard-size 2 -out "$$tmp/fleet.jsonl" \
		2> "$$tmp/coord.log" & cpid=$$!; \
	addr=""; for i in $$(seq 1 50); do \
		addr=$$(sed -n 's|.*serving on http://\([^ ]*\).*|\1|p' "$$tmp/coord.log" | head -1); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	[ -n "$$addr" ] || { echo "fleet-smoke: coordinator never announced its address"; \
		cat "$$tmp/coord.log"; exit 1; }; \
	"$$tmp/sweep" -worker "http://$$addr" -worker-id alpha \
		-spool "$$tmp/alpha.spool.jsonl" -give-up 60s 2> "$$tmp/alpha.log" & w1=$$!; \
	"$$tmp/sweep" -worker "http://$$addr" -worker-id beta \
		-spool "$$tmp/beta.spool.jsonl" -give-up 60s 2> "$$tmp/beta.log" & w2=$$!; \
	for i in $$(seq 1 100); do \
		grep -q 'leased shard .* to alpha' "$$tmp/coord.log" && break; sleep 0.1; done; \
	grep -q 'leased shard .* to alpha' "$$tmp/coord.log" \
		|| { echo "fleet-smoke: alpha never acquired a lease"; cat "$$tmp/coord.log"; exit 1; }; \
	sleep 0.5; kill -9 $$w1 2>/dev/null; \
	wait $$w2 || { echo "fleet-smoke: surviving worker failed"; cat "$$tmp/beta.log"; exit 1; }; \
	wait $$cpid || { echo "fleet-smoke: coordinator failed"; cat "$$tmp/coord.log"; exit 1; }; \
	grep -q 'expired' "$$tmp/coord.log" \
		|| { echo "fleet-smoke: no lease expired (kill missed the run)"; cat "$$tmp/coord.log"; exit 1; }; \
	cmp "$$tmp/serial.jsonl" "$$tmp/fleet.jsonl" \
		|| { echo "fleet-smoke: merged checkpoint diverged from serial"; exit 1; }; \
	echo "fleet-smoke: killed worker's shard re-queued; merged checkpoint byte-identical to serial"

# Coverage gate, two levels. Packages whose whole job is checking other
# code — internal/hybrid (paper-math cross-validation), internal/prof
# (profiling plumbing every command trusts) and cmd/obsreport (the CI
# perf gate itself) — carry hard per-package statement floors. The
# repo-wide figure (measured with -short, the same profile `make race`
# uses) is gated by the checked-in ratchet in coverage_ratchet.txt: it
# must never fall below the recorded value, and a PR that raises
# coverage should bump the file so the floor only ever moves up.
cover:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for spec in ./internal/hybrid:85 ./internal/prof:85 ./cmd/obsreport:85; do \
		pkg=$${spec%:*}; floor=$${spec##*:}; \
		$(GO) test -timeout 10m -coverprofile="$$tmp/pkg.cov" "$$pkg" > /dev/null; \
		got=$$($(GO) tool cover -func="$$tmp/pkg.cov" | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		if awk -v got="$$got" -v floor="$$floor" 'BEGIN { exit !(got+0 < floor+0) }'; then \
			echo "cover: $$pkg $$got% is below its $$floor% floor"; exit 1; fi; \
		echo "cover: $$pkg $$got% (floor $$floor%)"; \
	done; \
	$(GO) test -short -timeout 10m -coverprofile="$$tmp/all.cov" ./... > /dev/null; \
	tot=$$($(GO) tool cover -func="$$tmp/all.cov" | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	floor=$$(cat coverage_ratchet.txt); \
	if awk -v got="$$tot" -v floor="$$floor" 'BEGIN { exit !(got+0 < floor+0) }'; then \
		echo "cover: repo-wide $$tot% fell below the ratchet $$floor% (coverage_ratchet.txt)"; exit 1; fi; \
	echo "cover: repo-wide $$tot% (ratchet $$floor%)"

# Hybrid oracle gate: the fluid model, the packet simulator and the
# paper's fixed-point predictions must agree at the four canonical
# operating points (two per protocol, paper scale). ecnbench exits 1 if
# any check lands outside its documented tolerance, failing CI.
hybrid-gate:
	$(GO) run ./cmd/ecnbench -exp crossval -full

# Perf-trajectory gate: a quick fixed-seed packetsim run must reproduce
# the checked-in golden latency percentiles within 5%. Regenerate the
# golden file with the same packetsim command after an intentional
# distribution change.
obsreport-gate:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -proto timely -n 2 -horizon 0.005 -seed 7 \
		-hist "$$tmp/hist.jsonl" > /dev/null; \
	$(GO) run ./cmd/obsreport -base cmd/obsreport/testdata/golden_packetsim_hist.jsonl \
		-new "$$tmp/hist.jsonl" -threshold 0.05 \
		&& echo "obsreport-gate: percentiles match the golden run"
