# CI gates for the ecndelay reproduction. `make ci` is the full gate;
# `make race` is the correctness gate for the concurrent sweep engine.

GO ?= go

.PHONY: ci build vet fmt test race bench bench-smoke determinism obs-ab

ci: fmt vet build test race bench-smoke determinism obs-ab

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test -timeout 5m ./...

# Race gate over the whole module: the sweep engine and the shared
# observer (atomic counters, mutex-serialised tracer and invariant
# checker) are the concurrent paths, but every package rides along so a
# new data race anywhere fails CI. internal/fluid is excluded: it is
# single-goroutine numeric integration (nothing for the detector to
# find) and its ~2-minute suite balloons past the timeout under -race.
race:
	$(GO) test -race -timeout 10m $$($(GO) list ./... | grep -v internal/fluid)

bench:
	$(GO) test -bench=Sweep -run='^$$' .

# Alloc-regression gate: run the hot-path microbenchmarks once and the
# AllocsPerRun guards that pin the steady-state paths at 0 allocs/op —
# both with observability off (the hooks must be free) and with a full
# observer attached (counters, tracer, checker must not allocate either).
bench-smoke:
	$(GO) test -timeout 5m -run='^$$' -bench='HandlerEvents|ClosureEvents|PortChain' \
		-benchmem -benchtime=1x ./internal/des ./internal/netsim
	$(GO) test -timeout 5m -run='AllocFree' ./internal/des ./internal/netsim ./internal/obs

# Determinism gate: a faulty packet-level run (loss + feedback loss +
# go-back-N recovery) executed twice must produce byte-identical output.
determinism:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 \
		-loss 1e-3 -ctrl-loss 1e-2 -recovery -seed 7 -fault-seed 42 > "$$tmp/a.tsv"; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 \
		-loss 1e-3 -ctrl-loss 1e-2 -recovery -seed 7 -fault-seed 42 > "$$tmp/b.tsv"; \
	cmp "$$tmp/a.tsv" "$$tmp/b.tsv" && echo "determinism: faulty run reproduces byte-for-byte"

# Observability A/B gate: attaching the full observer (metrics + trace +
# probes + invariants) must not change the simulation — the same seeded
# run with and without the obs flags must print byte-identical results,
# and the observed run must finish with zero invariant violations (a
# non-zero packetsim exit fails the gate).
obs-ab:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 -seed 7 > "$$tmp/off.tsv"; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 -seed 7 \
		-metrics "$$tmp/metrics.tsv" -trace "$$tmp/trace.jsonl" \
		-probe "$$tmp/probe.jsonl" -invariants > "$$tmp/on.tsv"; \
	cmp "$$tmp/off.tsv" "$$tmp/on.tsv"; \
	for f in metrics.tsv trace.jsonl probe.jsonl; do \
		[ -s "$$tmp/$$f" ] || { echo "obs-ab: $$f is empty"; exit 1; }; done; \
	echo "obs-ab: observer is invisible to the run (outputs byte-identical, invariants clean)"
