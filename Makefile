# CI gates for the ecndelay reproduction. `make ci` is the full gate;
# `make race` is the correctness gate for the concurrent sweep engine.

GO ?= go

.PHONY: ci build vet fmt test race bench bench-smoke determinism

ci: fmt vet build test race bench-smoke determinism

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test -timeout 5m ./...

# Race gate for the concurrent code paths: the sweep engine, the
# experiment registry it drives, the pooled event/packet engines
# underneath them, and the fault-injection layer that hooks into them.
race:
	$(GO) test -race -timeout 5m ./internal/des ./internal/netsim ./internal/sweep ./internal/exp ./internal/fault

bench:
	$(GO) test -bench=Sweep -run='^$$' .

# Alloc-regression gate: run the hot-path microbenchmarks once and the
# AllocsPerRun guards that pin the steady-state paths at 0 allocs/op.
bench-smoke:
	$(GO) test -timeout 5m -run='^$$' -bench='HandlerEvents|ClosureEvents|PortChain' \
		-benchmem -benchtime=1x ./internal/des ./internal/netsim
	$(GO) test -timeout 5m -run='AllocFree' ./internal/des ./internal/netsim

# Determinism gate: a faulty packet-level run (loss + feedback loss +
# go-back-N recovery) executed twice must produce byte-identical output.
determinism:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 \
		-loss 1e-3 -ctrl-loss 1e-2 -recovery -seed 7 -fault-seed 42 > "$$tmp/a.tsv"; \
	$(GO) run ./cmd/packetsim -proto dcqcn -n 4 -horizon 0.02 \
		-loss 1e-3 -ctrl-loss 1e-2 -recovery -seed 7 -fault-seed 42 > "$$tmp/b.tsv"; \
	cmp "$$tmp/a.tsv" "$$tmp/b.tsv" && echo "determinism: faulty run reproduces byte-for-byte"
