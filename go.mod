module ecndelay

go 1.22
