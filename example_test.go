package ecndelay_test

// Testable examples: these run under `go test` and double as the API
// documentation shown by godoc.

import (
	"fmt"

	"ecndelay"
)

// The unique DCQCN operating point of Theorem 1 for two flows at 40 Gb/s.
func ExampleSolveDCQCNFixedPoint() {
	params := ecndelay.DefaultDCQCNParams(2)
	fp, err := ecndelay.SolveDCQCNFixedPoint(params)
	if err != nil {
		panic(err)
	}
	fmt.Printf("p* = %.3g\n", fp.P)
	fmt.Printf("q* = %.1f KB\n", fp.Q) // packets of 1 KB
	fmt.Printf("fair share = %.0f Gb/s\n", fp.RC*1000*8/1e9)
	// Output:
	// p* = 0.000777
	// q* = 20.2 KB
	// fair share = 20 Gb/s
}

// The Eq. 31 fixed-point queue for patched TIMELY grows linearly with the
// number of flows.
func ExamplePatchedTimelyQStar() {
	c := 10e9 / 8.0     // bottleneck, bytes/s
	qPrime := c * 50e-6 // reference queue: C · T_low
	delta := 10e6 / 8.0 // additive step, bytes/s
	beta := 0.008
	for _, n := range []int{1, 2, 4} {
		q := ecndelay.PatchedTimelyQStar(n, delta, beta, c, qPrime)
		fmt.Printf("N=%d: q* = %.0f bytes\n", n, q)
	}
	// Output:
	// N=1: q* = 70312 bytes
	// N=2: q* = 78125 bytes
	// N=4: q* = 93750 bytes
}

// DCQCN's mid-N instability at high feedback delay (Figure 3a): the Bode
// analysis flags 8 flows at 85 µs as unstable while 64 flows are fine.
func ExamplePhaseMargin() {
	for _, n := range []int{1, 8, 64} {
		p := ecndelay.DefaultDCQCNParams(n)
		p.TauStar = 85e-6
		loop, err := ecndelay.NewDCQCNLoop(p)
		if err != nil {
			panic(err)
		}
		res, err := ecndelay.PhaseMargin(loop)
		if err != nil {
			panic(err)
		}
		fmt.Printf("N=%d: stable=%v\n", n, res.Stable)
	}
	// Output:
	// N=1: stable=true
	// N=8: stable=false
	// N=64: stable=true
}

// Theorem 2's exponential convergence: the peak-rate gap between two flows
// contracts every AIMD cycle.
func ExampleRunConvergence() {
	cfg := ecndelay.DefaultConvergenceConfig(2)
	cfg.InitialRates = []float64{4e6, 1e6}
	cycles, err := ecndelay.RunConvergence(cfg, 40)
	if err != nil {
		panic(err)
	}
	rate := ecndelay.GapDecayRate(cycles, 1)
	alphaStar, _, err := ecndelay.AlphaFixedPoint(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("contracts every cycle: %v\n", rate < 1)
	fmt.Printf("at least as fast as 1-α*/2: %v\n", rate <= 1-alphaStar/2+0.02)
	// Output:
	// contracts every cycle: true
	// at least as fast as 1-α*/2: true
}

// The §5.1 workload: heavy-tailed web-search flow sizes.
func ExampleWebSearchSizes() {
	ws := ecndelay.WebSearchSizes()
	fmt.Printf("mean = %.2f MB\n", ws.Mean()/1e6)
	fmt.Printf("median = %.0f KB\n", ws.Quantile(0.5)/1e3)
	// Output:
	// mean = 1.14 MB
	// median = 48 KB
}

// Jain's fairness index distinguishes a fair split from a frozen unfair one.
func ExampleJainIndex() {
	fmt.Printf("fair:   %.3f\n", ecndelay.JainIndex([]float64{5e8, 5e8}))
	fmt.Printf("unfair: %.3f\n", ecndelay.JainIndex([]float64{8e8, 2e8}))
	// Output:
	// fair:   1.000
	// unfair: 0.735
}
