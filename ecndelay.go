// Package ecndelay is a from-scratch Go reproduction of "ECN or Delay:
// Lessons Learnt from Analysis of DCQCN and TIMELY" (Zhu, Ghobadi, Misra,
// Padhye — CoNEXT 2016).
//
// It contains every system the paper builds on:
//
//   - the delay-differential fluid models of DCQCN (Fig. 1), TIMELY
//     (Fig. 7), patched TIMELY (Eq. 29-30) and their PI-controller variants
//     (Eq. 32), on a purpose-built RK4 solver with dense delay history;
//   - the fixed-point theory (Theorems 1 and 5, Eq. 9-14 and 31) and the
//     discrete convergence model of Theorem 2;
//   - the control-theoretic stability analysis (Appendix A): numeric
//     linearisation, Laplace-domain loop transfer functions, Bode phase
//     margins;
//   - an NS3-analogous deterministic packet-level simulator: switches with
//     shared-buffer egress/ingress ECN marking, PFC, PI AQM, and full
//     DCQCN (RP/NP/CP) and TIMELY (per-packet and per-burst pacing)
//     endpoints;
//   - the §5.1 workload generator (DCTCP web-search flow sizes, Poisson
//     arrivals) and flow-completion-time harness;
//   - one registered, runnable experiment per table and figure in the
//     paper's evaluation (see Runners).
//
// This root package is the public API: it re-exports the library's types
// and constructors. The implementation lives in internal/ packages; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
//
// # Quick start
//
//	sys, err := ecndelay.NewDCQCNFluid(ecndelay.DCQCNFluidConfig{
//		Params: ecndelay.DefaultDCQCNParams(2),
//	})
//	if err != nil { ... }
//	trajectory := ecndelay.RunFluid(sys, 1e-6, 0.1, 1e-4)
//
// runs the two-flow DCQCN fluid model for 100 ms. See examples/ for
// runnable programs covering the fluid models, the stability analysis, the
// packet simulator, and the FCT benchmark.
package ecndelay

import (
	"fmt"
	"io"

	"ecndelay/internal/convergence"
	"ecndelay/internal/dcqcn"
	"ecndelay/internal/des"
	"ecndelay/internal/exp"
	"ecndelay/internal/fault"
	"ecndelay/internal/fixedpoint"
	"ecndelay/internal/fleet"
	"ecndelay/internal/fluid"
	"ecndelay/internal/hybrid"
	"ecndelay/internal/netsim"
	"ecndelay/internal/obs"
	"ecndelay/internal/ode"
	"ecndelay/internal/stability"
	"ecndelay/internal/stats"
	"ecndelay/internal/sweep"
	"ecndelay/internal/timely"
	"ecndelay/internal/topo"
	"ecndelay/internal/workload"
)

// ---- Simulation time ----

// Time is an absolute simulation time in nanoseconds; Duration a span.
type (
	Time     = des.Time
	Duration = des.Duration
)

// Re-exported duration units.
const (
	Nanosecond  = des.Nanosecond
	Microsecond = des.Microsecond
	Millisecond = des.Millisecond
	Second      = des.Second
)

// DurationFromSeconds converts seconds to a simulation Duration.
func DurationFromSeconds(s float64) Duration { return des.DurationFromSeconds(s) }

// ---- Fluid models (Figures 1 and 7, Eq. 29-32) ----

// Fluid model configuration and system types.
type (
	// DCQCNParams are the Table 1 parameters in packet units.
	DCQCNParams = fixedpoint.DCQCNParams
	// DCQCNFluidConfig configures the DCQCN fluid model.
	DCQCNFluidConfig = fluid.DCQCNConfig
	// DCQCNFluid is the Figure 1 model as an integrable system.
	DCQCNFluid = fluid.DCQCNSystem
	// TimelyFluidConfig configures the TIMELY fluid models (Table 2).
	TimelyFluidConfig = fluid.TimelyConfig
	// TimelyFluid is the Figure 7 model.
	TimelyFluid = fluid.TimelySystem
	// PatchedTimelyFluid is the Eq. 29-30 model.
	PatchedTimelyFluid = fluid.PatchedTimelySystem
	// PIConfig holds Eq. 32 controller gains.
	PIConfig = fluid.PIConfig
	// DCQCNPIConfig configures DCQCN with switch-side PI marking (Fig. 18).
	DCQCNPIConfig = fluid.DCQCNPIConfig
	// DCQCNPIFluid is that model.
	DCQCNPIFluid = fluid.DCQCNPISystem
	// TimelyPIConfig configures patched TIMELY with host-side PI (Fig. 19).
	TimelyPIConfig = fluid.TimelyPIConfig
	// TimelyPIFluid is that model.
	TimelyPIFluid = fluid.TimelyPISystem
	// FluidModel is any of the above: an ODE system with initial state.
	FluidModel = fluid.Model
	// FluidSample is one recorded trajectory point.
	FluidSample = fluid.Sample
)

// DefaultDCQCNParams returns the [31] defaults for n flows at 40 Gb/s.
func DefaultDCQCNParams(n int) DCQCNParams { return fluid.DefaultDCQCNParams(n) }

// DefaultTimelyFluidConfig returns the footnote-4 TIMELY parameters.
func DefaultTimelyFluidConfig(n int) TimelyFluidConfig { return fluid.DefaultTimelyConfig(n) }

// DefaultPatchedTimelyFluidConfig returns the §4.3 patched parameters.
func DefaultPatchedTimelyFluidConfig(n int) TimelyFluidConfig {
	return fluid.DefaultPatchedTimelyConfig(n)
}

// NewDCQCNFluid builds the Figure 1 model.
func NewDCQCNFluid(cfg DCQCNFluidConfig) (*DCQCNFluid, error) { return fluid.NewDCQCN(cfg) }

// NewTimelyFluid builds the Figure 7 model.
func NewTimelyFluid(cfg TimelyFluidConfig) (*TimelyFluid, error) { return fluid.NewTimely(cfg) }

// NewPatchedTimelyFluid builds the Eq. 29-30 model.
func NewPatchedTimelyFluid(cfg TimelyFluidConfig) (*PatchedTimelyFluid, error) {
	return fluid.NewPatchedTimely(cfg)
}

// NewDCQCNPIFluid builds DCQCN with PI marking at the switch.
func NewDCQCNPIFluid(cfg DCQCNPIConfig) (*DCQCNPIFluid, error) { return fluid.NewDCQCNPI(cfg) }

// NewTimelyPIFluid builds patched TIMELY with an end-host PI controller.
func NewTimelyPIFluid(cfg TimelyPIConfig) (*TimelyPIFluid, error) { return fluid.NewTimelyPI(cfg) }

// RunFluid integrates a fluid model from 0 to t1 with step h, sampling
// every sampleEvery seconds.
func RunFluid(m FluidModel, h, t1, sampleEvery float64) []FluidSample {
	return fluid.Run(m, h, t1, sampleEvery)
}

// ---- Fixed points and convergence (Theorems 1, 2, 5) ----

// Fixed-point types.
type (
	// DCQCNFixedPoint is the unique Theorem 1 operating point.
	DCQCNFixedPoint = fixedpoint.DCQCNFixedPoint
	// ConvergenceConfig parameterises the Theorem 2 discrete model.
	ConvergenceConfig = convergence.Config
	// ConvergenceCycle records one synchronised marking peak.
	ConvergenceCycle = convergence.Cycle
)

// SolveDCQCNFixedPoint solves Eq. 11 exactly (Theorem 1).
func SolveDCQCNFixedPoint(p DCQCNParams) (DCQCNFixedPoint, error) {
	return fixedpoint.SolveDCQCN(p)
}

// DCQCNPStarApprox is the closed-form Eq. 14 approximation of p*.
func DCQCNPStarApprox(p DCQCNParams) float64 { return fixedpoint.DCQCNPStarApprox(p) }

// PatchedTimelyQStar is the Eq. 31 fixed-point queue.
func PatchedTimelyQStar(n int, delta, beta, c, qPrime float64) float64 {
	return fixedpoint.PatchedTimelyQStar(n, delta, beta, c, qPrime)
}

// DefaultConvergenceConfig returns the discrete model at [31] defaults.
func DefaultConvergenceConfig(n int) ConvergenceConfig { return convergence.Default(n) }

// RunConvergence simulates the Theorem 2 discrete AIMD model.
func RunConvergence(cfg ConvergenceConfig, cycles int) ([]ConvergenceCycle, error) {
	return convergence.Run(cfg, cycles)
}

// AlphaFixedPoint solves Eq. 42 for α* and ΔT*.
func AlphaFixedPoint(cfg ConvergenceConfig) (alphaStar, deltaTStar float64, err error) {
	return convergence.AlphaFixedPoint(cfg)
}

// GapDecayRate fits the per-cycle geometric contraction of the rate gap.
func GapDecayRate(cycles []ConvergenceCycle, floor float64) float64 {
	return convergence.GapDecayRate(cycles, floor)
}

// ---- Stability analysis (§3.2, §4.3, Appendix A) ----

// Stability analysis types.
type (
	// LoopModel is a symmetric-flow loop reduction (see internal/stability).
	LoopModel = stability.LoopModel
	// StabilityResult is a phase-margin verdict.
	StabilityResult = stability.Result
	// DCQCNLoop is the DCQCN loop reduction.
	DCQCNLoop = fluid.DCQCNLoop
	// DCQCNIngressLoop is the DCQCN loop reduction with ingress marking
	// (the Figure 17 ablation, analytically).
	DCQCNIngressLoop = fluid.DCQCNIngressLoop
	// PatchedTimelyLoop is the patched TIMELY loop reduction.
	PatchedTimelyLoop = fluid.PatchedTimelyLoop
)

// PhaseMargin linearises the model at its fixed point and runs the Bode
// analysis of §3.2.
func PhaseMargin(m LoopModel) (StabilityResult, error) { return stability.PhaseMargin(m) }

// LoopGain evaluates the open-loop transfer function at jω.
func LoopGain(m LoopModel, omega float64) (complex128, error) { return stability.LoopGain(m, omega) }

// NewDCQCNLoop builds the DCQCN loop reduction for given parameters.
func NewDCQCNLoop(p DCQCNParams) (*DCQCNLoop, error) { return fluid.NewDCQCNLoop(p) }

// NewDCQCNIngressLoop builds the ingress-marking loop reduction, whose
// marking feedback path carries the extra queueing-delay lag of §5.2.
func NewDCQCNIngressLoop(p DCQCNParams) (*DCQCNIngressLoop, error) {
	return fluid.NewDCQCNIngressLoop(p)
}

// NewPatchedTimelyLoop builds the patched TIMELY loop reduction.
func NewPatchedTimelyLoop(cfg TimelyFluidConfig) (*PatchedTimelyLoop, error) {
	return fluid.NewPatchedTimelyLoop(cfg)
}

// ---- Packet-level simulator ----

// Packet-level simulator types.
type (
	// Network owns the event engine, nodes and RNG.
	Network = netsim.Network
	// Node is anything attached to the fabric.
	Node = netsim.Node
	// Host is an end station.
	Host = netsim.Host
	// Switch is a shared-buffer output-queued switch.
	Switch = netsim.Switch
	// Port models one direction of a link.
	Port = netsim.Port
	// Packet is the simulated wire unit.
	Packet = netsim.Packet
	// Marker is an ECN marking policy.
	Marker = netsim.Marker
	// REDMarker is the Eq. 3 profile.
	REDMarker = netsim.REDMarker
	// PIMarker is the Eq. 32 switch AQM.
	PIMarker = netsim.PIMarker
	// PFCConfig sets Priority Flow Control thresholds.
	PFCConfig = netsim.PFCConfig
	// Star is the §3.1/§4.1 validation topology.
	Star = netsim.Star
	// StarConfig parameterises it.
	StarConfig = netsim.StarConfig
	// Dumbbell is the Figure 13 topology.
	Dumbbell = netsim.Dumbbell
	// DumbbellConfig parameterises it.
	DumbbellConfig = netsim.DumbbellConfig
	// ParkingLot is the §7 multi-bottleneck chain.
	ParkingLot = netsim.ParkingLot
	// ParkingLotConfig parameterises it.
	ParkingLotConfig = netsim.ParkingLotConfig
	// Clos is a wired datacenter fabric (leaf-spine or 3-tier fat tree)
	// with seeded flow-consistent ECMP across the equal-cost up paths.
	Clos = topo.Clos
	// ClosConfig parameterises NewClos.
	ClosConfig = topo.ClosConfig
	// LinkConfig describes one direction of a link.
	LinkConfig = netsim.LinkConfig

	// DCQCNEndpoint is the per-host DCQCN engine (RP+NP roles).
	DCQCNEndpoint = dcqcn.Endpoint
	// DCQCNSender is the reaction point for one flow.
	DCQCNSender = dcqcn.Sender
	// DCQCNCompletion reports a finished DCQCN flow at the receiver.
	DCQCNCompletion = dcqcn.Completion
	// DCQCNProtoParams are the wire-unit protocol parameters.
	DCQCNProtoParams = dcqcn.Params
	// TimelyEndpoint is the per-host TIMELY engine.
	TimelyEndpoint = timely.Endpoint
	// TimelySender runs Algorithm 1 (or 2) for one flow.
	TimelySender = timely.Sender
	// TimelyCompletion reports a finished TIMELY flow at the receiver.
	TimelyCompletion = timely.Completion
	// TimelyProtoParams are the wire-unit protocol parameters.
	TimelyProtoParams = timely.Params
)

// NewNetwork creates an empty deterministic network.
func NewNetwork(seed int64) *Network { return netsim.New(seed) }

// NewStar wires the N-senders-one-receiver validation topology.
func NewStar(nw *Network, cfg StarConfig) *Star { return netsim.NewStar(nw, cfg) }

// NewDumbbell wires the Figure 13 topology.
func NewDumbbell(nw *Network, cfg DumbbellConfig) *Dumbbell { return netsim.NewDumbbell(nw, cfg) }

// NewParkingLot wires the §7 multi-bottleneck chain.
func NewParkingLot(nw *Network, cfg ParkingLotConfig) *ParkingLot {
	return netsim.NewParkingLot(nw, cfg)
}

// NewClos generates a deterministic Clos fabric (2-tier leaf-spine or
// 3-tier k-ary fat tree) on nw: pinned down routes, ECMP up routes, per-
// switch hash salts derived from cfg.ECMPSeed.
func NewClos(nw *Network, cfg ClosConfig) (*Clos, error) { return topo.NewClos(nw, cfg) }

// DefaultShardAssign splits nw's nodes over n shards for
// Network.PartitionByNode: contiguous blocks, with every RNG-drawing node
// pinned to shard 0 so the shared-RNG draw order stays serial-identical.
func DefaultShardAssign(nw *Network, n int) []int { return netsim.DefaultAssign(nw, n) }

// DefaultDCQCNProtoParams returns the [31] protocol defaults.
func DefaultDCQCNProtoParams() DCQCNProtoParams { return dcqcn.DefaultParams() }

// DefaultTimelyProtoParams returns the [21] footnote-4 protocol defaults.
func DefaultTimelyProtoParams() TimelyProtoParams { return timely.DefaultParams() }

// DefaultPatchedTimelyProtoParams returns the §4.3 patched defaults.
func DefaultPatchedTimelyProtoParams() TimelyProtoParams { return timely.DefaultPatchedParams() }

// NewDCQCNEndpoint attaches a DCQCN engine to a host.
func NewDCQCNEndpoint(h *Host, p DCQCNProtoParams) (*DCQCNEndpoint, error) {
	return dcqcn.NewEndpoint(h, p)
}

// NewTimelyEndpoint attaches a TIMELY engine to a host.
func NewTimelyEndpoint(h *Host, p TimelyProtoParams) (*TimelyEndpoint, error) {
	return timely.NewEndpoint(h, p)
}

// MonitorQueueBytes samples a port's queue occupancy into a time series.
func MonitorQueueBytes(nw *Network, p *Port, every Duration) *Series {
	return netsim.MonitorQueueBytes(nw.Sim, p, every)
}

// MonitorThroughput samples a port's delivered rate into a time series.
func MonitorThroughput(nw *Network, p *Port, every Duration) *Series {
	return netsim.MonitorThroughput(nw.Sim, p, every)
}

// ---- Fault injection and loss recovery ----

// Fault-injection types (internal/fault, internal/netsim). A FaultPlan is
// a declarative, seeded schedule of packet loss and link flaps; applying
// an empty plan — or none — leaves a run bit-identical to a fault-free
// one.
type (
	// FaultSelector is a bitmask choosing the packet kinds a loss rule
	// applies to.
	FaultSelector = fault.Selector
	// GilbertElliott parameterises bursty two-state loss.
	GilbertElliott = fault.GilbertElliott
	// Loss is one loss rule on a link.
	Loss = fault.Loss
	// Flap takes a link down at a set time, optionally back up later.
	Flap = fault.Flap
	// LinkFaults binds loss rules and flaps to one port.
	LinkFaults = fault.LinkFaults
	// FaultPlan is a complete deterministic fault schedule.
	FaultPlan = fault.Plan
	// AppliedFaults is a live plan on a network; Remove detaches it.
	AppliedFaults = fault.Applied

	// PFCWatchdog flags sustained PAUSE (pause storms) and pauses still
	// open at the end of a run (suspected deadlock).
	PFCWatchdog = netsim.PFCWatchdog
	// PauseStorm is one watchdog detection.
	PauseStorm = netsim.PauseStorm

	// DCQCNRecoveryStats summarises a DCQCN sender's go-back-N work.
	DCQCNRecoveryStats = dcqcn.RecoveryStats
	// TimelyRecoveryStats summarises a TIMELY sender's go-back-N work.
	TimelyRecoveryStats = timely.RecoveryStats
)

// Loss-rule selectors.
const (
	SelData = fault.SelData
	SelAck  = fault.SelAck
	SelCNP  = fault.SelCNP
	SelNack = fault.SelNack
	SelPFC  = fault.SelPFC
	SelCtrl = fault.SelCtrl
	SelAll  = fault.SelAll
)

// NewPFCWatchdog creates a watchdog that flags any pause sustained past
// threshold. Attach ports with Watch/WatchHost/WatchSwitch and call
// Finish after the run.
func NewPFCWatchdog(nw *Network, threshold Duration) *PFCWatchdog {
	return netsim.NewPFCWatchdog(nw.Sim, threshold)
}

// ---- Workload and statistics ----

// Workload and statistics types.
type (
	// FlowSizeDist is a piecewise-linear empirical distribution.
	FlowSizeDist = workload.Empirical
	// Flow is one generated transfer.
	Flow = workload.Flow
	// WorkloadConfig drives traffic generation.
	WorkloadConfig = workload.Config
	// PoissonStream yields the Generate sequence lazily, one flow per
	// Next call, so churn length costs simulated time rather than memory.
	PoissonStream = workload.PoissonStream
	// IncastConfig drives GenerateIncast.
	IncastConfig = workload.IncastConfig
	// ShuffleConfig drives GenerateShuffle.
	ShuffleConfig = workload.ShuffleConfig
	// BurstConfig drives GenerateStorageBursts.
	BurstConfig = workload.BurstConfig
	// Series is a scalar time series.
	Series = stats.Series
	// Summary holds moments and extremes of a sample.
	Summary = stats.Summary
	// CDFPoint is one step of an empirical CDF.
	CDFPoint = stats.CDFPoint
)

// WebSearchSizes is the DCTCP [2] web-search flow-size distribution.
func WebSearchSizes() *FlowSizeDist { return workload.WebSearch() }

// GenerateWorkload produces a Poisson flow arrival sequence.
func GenerateWorkload(cfg WorkloadConfig) ([]Flow, error) { return workload.Generate(cfg) }

// NewPoissonStream validates cfg and returns the lazy arrival generator
// behind GenerateWorkload.
func NewPoissonStream(cfg WorkloadConfig) (*PoissonStream, error) {
	return workload.NewPoissonStream(cfg)
}

// GenerateIncast produces the N-to-1 partition-aggregate pattern.
func GenerateIncast(cfg IncastConfig) ([]Flow, error) { return workload.Incast(cfg) }

// GenerateShuffle produces the all-to-all exchange.
func GenerateShuffle(cfg ShuffleConfig) ([]Flow, error) { return workload.Shuffle(cfg) }

// GenerateStorageBursts produces Poisson replicated-write bursts.
func GenerateStorageBursts(cfg BurstConfig) ([]Flow, error) { return workload.StorageBursts(cfg) }

// Percentile returns the p-th percentile of xs.
func Percentile(xs []float64, p float64) (float64, error) { return stats.Percentile(xs, p) }

// Summarize computes moments and extremes.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// CDF builds an empirical CDF.
func CDF(xs []float64) []CDFPoint { return stats.CDF(xs) }

// JainIndex is Jain's fairness index.
func JainIndex(xs []float64) float64 { return stats.JainIndex(xs) }

// ---- Experiments (one per paper table/figure) ----

// Experiment types.
type (
	// Experiment is a registered paper experiment.
	Experiment = exp.Runner
	// ExperimentOptions configure a run.
	ExperimentOptions = exp.Options
	// Report is an experiment result.
	Report = exp.Report
	// FCTConfig drives the §5.1 flow-completion-time runs.
	FCTConfig = exp.FCTConfig
	// FCTResult aggregates one FCT run.
	FCTResult = exp.FCTResult
	// Protocol selects the congestion-control scheme.
	Protocol = exp.Protocol
)

// Experiment fidelity levels and protocols.
const (
	Quick = exp.Quick
	Full  = exp.Full

	ProtoDCQCN         = exp.ProtoDCQCN
	ProtoTimely        = exp.ProtoTimely
	ProtoPatchedTimely = exp.ProtoPatchedTimely
)

// Runners lists every registered experiment.
func Runners() []Experiment { return exp.Runners() }

// GetRunner finds an experiment by id (e.g. "fig14").
func GetRunner(id string) (Experiment, bool) { return exp.Get(id) }

// RunFCT executes one §5.1 flow-completion-time run.
func RunFCT(cfg FCTConfig) (*FCTResult, error) { return exp.RunFCT(cfg) }

// ODESolver re-exports the delay-aware RK4 solver for users who want to
// integrate their own models against the same machinery.
type ODESolver = ode.Solver

// ODESystem is the interface such models implement.
type ODESystem = ode.System

// ---- Parallel experiment orchestration (internal/sweep) ----

// Sweep engine types.
type (
	// SweepJob is one unit of work in a parameter sweep.
	SweepJob = sweep.Job
	// SweepConfig tunes one engine invocation (workers, timeout,
	// retries, base seed, progress reporting).
	SweepConfig = sweep.Config
	// SweepResult is the deterministic outcome record of one job.
	SweepResult = sweep.Result
	// SweepSummary aggregates one sweep run.
	SweepSummary = sweep.Summary
	// SweepSink receives completed job results.
	SweepSink = sweep.Sink
	// SweepJSONLSink checkpoints results as JSONL with resume support.
	SweepJSONLSink = sweep.JSONLSink
	// SweepMemorySink collects results in memory.
	SweepMemorySink = sweep.MemorySink
)

// RunSweep fans jobs out over a bounded worker pool with per-job fault
// isolation; output is deterministic across worker counts.
func RunSweep(cfg SweepConfig, jobs []SweepJob, sink SweepSink) (SweepSummary, error) {
	return sweep.Run(cfg, jobs, sink)
}

// DeriveSweepSeed maps (baseSeed, job index) to the per-job seed the
// engine hands each job, independent of scheduling order.
func DeriveSweepSeed(base int64, index int) int64 { return sweep.DeriveSeed(base, index) }

// OpenSweepJSONL opens (resume=true) or truncates a JSONL checkpoint.
func OpenSweepJSONL(path string, resume bool) (*SweepJSONLSink, error) {
	return sweep.OpenJSONL(path, resume)
}

// MarshalSweepResults renders results as JSONL sorted by job ID — the
// canonical byte-comparable form of a sweep's output.
func MarshalSweepResults(rs []SweepResult) ([]byte, error) { return sweep.MarshalResults(rs) }

// ReadSweepResults parses a JSONL checkpoint or spool file: last row
// per job ID, first-seen order, torn trailing lines tolerated, missing
// file yields no rows.
func ReadSweepResults(path string) ([]SweepResult, error) { return sweep.ReadResults(path) }

// ---- Distributed sweep fleet (internal/fleet) ----

// Fleet types: a coordinator leases grid shards to worker processes
// under TTL leases renewed by heartbeat; silent workers lose their
// shard, which re-queues and re-runs elsewhere with byte-identical
// rows (per-job seeds derive from the stable job index). See the
// internal/fleet package docs for the full failure model.
type (
	// FleetCoordinator owns lease books and the merged checkpoint.
	FleetCoordinator = fleet.Coordinator
	// FleetCoordinatorConfig parameterises NewFleetCoordinator.
	FleetCoordinatorConfig = fleet.CoordinatorConfig
	// FleetWorker pulls leases, runs jobs and streams rows back,
	// spooling locally across coordinator outages.
	FleetWorker = fleet.Worker
	// FleetWorkerConfig parameterises NewFleetWorker.
	FleetWorkerConfig = fleet.WorkerConfig
	// FleetSnapshot is the aggregated job board /progress serves.
	FleetSnapshot = fleet.Snapshot
	// FleetWorkerSnapshot is one worker's liveness row on that board.
	FleetWorkerSnapshot = fleet.WorkerSnapshot
	// FleetGridInfo describes a coordinator's grid to workers.
	FleetGridInfo = fleet.GridInfo
	// SweepSinkFunc adapts a function to the sweep Sink interface.
	SweepSinkFunc = sweep.SinkFunc
	// HistState is the portable wire form of a histogram: fleet workers
	// ship it, coordinators merge it commutatively.
	HistState = obs.HistState
	// HistBucket is one occupied bucket in a HistState.
	HistBucket = obs.HistBucket
)

// NewFleetCoordinator validates the grid, builds the shard queue and
// starts the lease-expiry sweep; Close it when done.
func NewFleetCoordinator(cfg FleetCoordinatorConfig) (*FleetCoordinator, error) {
	return fleet.NewCoordinator(cfg)
}

// NewFleetWorker validates cfg and returns a worker ready to Run.
func NewFleetWorker(cfg FleetWorkerConfig) (*FleetWorker, error) { return fleet.NewWorker(cfg) }

// HashFleetJobIDs fingerprints a job-ID list; coordinator and workers
// must agree on it before any job runs.
func HashFleetJobIDs(ids []string) string { return fleet.HashJobIDs(ids) }

// ExperimentSweepJobs builds one sweep job per (experiment id, seed)
// pair from the registry. With an empty seeds slice each experiment
// becomes a single job using the engine-derived seed; otherwise one
// job per listed seed, pinned to it.
//
// A shared opts.Observer is safe for any worker count: each job runs with
// a shallow copy of it whose ProbePrefix is extended with "<jobID>.", so
// probes from different jobs land in the shared ProbeSet under distinct,
// scheduling-independent names, and the invariant checker already scopes
// its books per network run.
func ExperimentSweepJobs(ids []string, opts ExperimentOptions, seeds []int64) ([]SweepJob, error) {
	var jobs []SweepJob
	for _, id := range ids {
		r, ok := exp.Get(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		runWith := func(jobID string, o ExperimentOptions) (map[string]float64, error) {
			o.Observer = JobObserver(o.Observer, jobID)
			rep, err := r.Run(o)
			if err != nil {
				return nil, err
			}
			return rep.Metrics, nil
		}
		if len(seeds) == 0 {
			jobID := r.ID
			jobs = append(jobs, SweepJob{
				ID:   jobID,
				Meta: map[string]string{"exp": r.ID, "figure": r.Figure},
				Run: func(seed int64) (map[string]float64, error) {
					o := opts
					o.Seed = seed
					return runWith(jobID, o)
				},
			})
			continue
		}
		for _, s := range seeds {
			s := s
			jobID := fmt.Sprintf("%s/seed%d", r.ID, s)
			jobs = append(jobs, SweepJob{
				ID:   jobID,
				Meta: map[string]string{"exp": r.ID, "figure": r.Figure, "seed": fmt.Sprint(s)},
				Run: func(int64) (map[string]float64, error) {
					o := opts
					o.Seed = s
					return runWith(jobID, o)
				},
			})
		}
	}
	return jobs, nil
}

// JobObserver returns a shallow copy of o with jobID appended to its
// ProbePrefix, so per-job probe series (and histograms) registered on a
// shared set stay distinguishable and export deterministically. A nil
// observer stays nil; the copy shares every facility (Metrics, Trace,
// Check, Probes, Hists) with the original — except that an observer with
// TracePerJob set gets a private per-job tracer instead of the shared
// Trace, so trace streams don't interleave jobs by completion order; an
// observer with AuditPerJob set likewise gets a private per-job audit
// trail.
func JobObserver(o *Observer, jobID string) *Observer {
	if o == nil {
		return nil
	}
	jo := *o
	jo.ProbePrefix = jo.ProbePrefix + jobID + "."
	if o.TracePerJob != nil {
		jo.Trace = o.TracePerJob(jobID)
	}
	if o.AuditPerJob != nil {
		jo.Audit = o.AuditPerJob(jobID)
	}
	return &jo
}

// ---- Observability (internal/obs) ----

// Observability facade: the zero-overhead-when-disabled instrumentation
// layer. Attach an Observer to a Network (or pass it through FCTConfig /
// ExperimentOptions) before building topology and endpoints.
type (
	// Observer bundles the observability facilities for one or more runs.
	Observer = obs.NetObserver
	// MetricsRegistry holds hierarchical counters and gauges.
	MetricsRegistry = obs.Registry
	// MetricsCounter is a monotonically increasing metric.
	MetricsCounter = obs.Counter
	// MetricsGauge is a last-value-wins metric.
	MetricsGauge = obs.Gauge
	// MetricsSnapshot is one instrument in a registry snapshot.
	MetricsSnapshot = obs.Metric
	// PortCounters is the per-port instrument set netsim registers.
	PortCounters = obs.PortCounters
	// EndpointCounters is the per-endpoint instrument set the protocol
	// engines register.
	EndpointCounters = obs.EndpointCounters
	// Probe is a fixed-cadence time series in a preallocated ring buffer.
	Probe = obs.Probe
	// ProbeSet is a collection of probes with canonical JSONL/CSV export.
	ProbeSet = obs.ProbeSet
	// ProbeSample is one recorded probe point.
	ProbeSample = obs.Sample
	// Tracer fans simulator events out to sinks.
	Tracer = obs.Tracer
	// TraceEvent is one trace record.
	TraceEvent = obs.Event
	// TraceEventType labels an instrumented simulator action.
	TraceEventType = obs.EventType
	// TraceSink receives trace events.
	TraceSink = obs.Sink
	// TraceMemorySink retains trace events in memory.
	TraceMemorySink = obs.MemorySink
	// TraceJSONLSink streams trace events as JSONL.
	TraceJSONLSink = obs.JSONLSink
	// AuditTrail fans control-loop decisions out to sinks.
	AuditTrail = obs.AuditTrail
	// AuditDecision is one control-loop audit record.
	AuditDecision = obs.Decision
	// AuditDecisionType labels a control-loop decision.
	AuditDecisionType = obs.DecisionType
	// AuditSink receives audit decisions.
	AuditSink = obs.DecisionSink
	// AuditMemorySink retains audit decisions in memory.
	AuditMemorySink = obs.AuditMemorySink
	// AuditJSONLSink buffers decisions and writes canonically sorted JSONL
	// on Close.
	AuditJSONLSink = obs.AuditJSONLSink
	// ExportHeader is the self-describing first record of a probe/trace/
	// audit JSONL export.
	ExportHeader = obs.Header
	// InvariantChecker verifies runtime invariants from the event stream.
	InvariantChecker = obs.Checker
	// InvariantViolation is one detected invariant breach.
	InvariantViolation = obs.Violation
	// InvariantClass identifies one of the checked invariant classes.
	InvariantClass = obs.Invariant
	// Hist is a streaming log-bucketed latency histogram.
	Hist = obs.Hist
	// HistSet is a collection of named histograms with canonical export.
	HistSet = obs.HistSet
	// HistSummary is one histogram's canonical export row.
	HistSummary = obs.HistSummary
	// TelemetryServer serves /metrics, /progress, /probes and pprof for a
	// live run.
	TelemetryServer = obs.Server
	// SweepStatus is a live job-state board for the /progress endpoint.
	SweepStatus = sweep.Status
	// SweepStatusSnapshot is the JSON shape /progress serves.
	SweepStatusSnapshot = sweep.StatusSnapshot
)

// Trace record types.
const (
	TraceEnqueue    = obs.Enqueue
	TraceDequeue    = obs.Dequeue
	TraceMark       = obs.Mark
	TracePause      = obs.Pause
	TraceResume     = obs.Resume
	TraceWireDrop   = obs.WireDrop
	TraceBufDrop    = obs.BufDrop
	TraceDeliver    = obs.Deliver
	TraceRetx       = obs.Retx
	TraceDoubleFree = obs.DoubleFree
)

// Control-loop audit decision types.
const (
	AuditMarkOpen      = obs.DecMarkOpen
	AuditMarkClose     = obs.DecMarkClose
	AuditRateCut       = obs.DecRateCut
	AuditAlphaFeedback = obs.DecAlphaFeedback
	AuditAlphaDecay    = obs.DecAlphaDecay
	AuditFastRecovery  = obs.DecFastRecovery
	AuditAdditiveInc   = obs.DecAdditiveInc
	AuditHyperInc      = obs.DecHyperInc
	AuditRTTSample     = obs.DecRTTSample
	AuditGradient      = obs.DecGradient
	AuditTimelyAdd     = obs.DecTimelyAdd
	AuditTimelyMD      = obs.DecTimelyMD
	AuditTimelyBrake   = obs.DecTimelyBrake
	AuditTimelyPatched = obs.DecTimelyPatched
)

// Invariant classes.
const (
	InvConservation = obs.InvConservation
	InvQueueBounds  = obs.InvQueueBounds
	InvPFCPairing   = obs.InvPFCPairing
	InvDoubleFree   = obs.InvDoubleFree
	InvShardHandoff = obs.InvShardHandoff
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewProbe creates a probe with a preallocated ring (cap <= 0: default).
func NewProbe(name string, capacity int) *Probe { return obs.NewProbe(name, capacity) }

// NewProbeSet returns an empty probe set.
func NewProbeSet() *ProbeSet { return obs.NewProbeSet() }

// NewTracer returns a tracer emitting to the given sinks.
func NewTracer(sinks ...TraceSink) *Tracer { return obs.NewTracer(sinks...) }

// NewTraceMemorySink preallocates an in-memory trace sink.
func NewTraceMemorySink(capacity int) *TraceMemorySink { return obs.NewMemorySink(capacity) }

// NewTraceJSONLSink wraps w as a streaming JSONL trace sink.
func NewTraceJSONLSink(w io.Writer) *TraceJSONLSink { return obs.NewJSONLSink(w) }

// NewAuditTrail returns a control-loop audit trail emitting to the given
// sinks.
func NewAuditTrail(sinks ...AuditSink) *AuditTrail { return obs.NewAuditTrail(sinks...) }

// NewAuditMemorySink preallocates an in-memory audit sink.
func NewAuditMemorySink(capacity int) *AuditMemorySink { return obs.NewAuditMemorySink(capacity) }

// NewAuditJSONLSink wraps w as a buffer-and-sort audit JSONL sink; Close
// writes the canonically ordered records.
func NewAuditJSONLSink(w io.Writer, capacity int) *AuditJSONLSink {
	return obs.NewAuditJSONLSink(w, capacity)
}

// NewInvariantChecker returns a checker with no recorded state.
func NewInvariantChecker() *InvariantChecker { return obs.NewChecker() }

// FullObserver returns an observer with every facility enabled.
func FullObserver() *Observer { return obs.Full() }

// NewHist returns an empty streaming histogram.
func NewHist(name string) *Hist { return obs.NewHist(name) }

// NewHistSet returns an empty histogram set.
func NewHistSet() *HistSet { return obs.NewHistSet() }

// NewTelemetryServer wraps an observer for live HTTP telemetry; Start it
// on an address and Close it when the run finishes.
func NewTelemetryServer(o *Observer) *TelemetryServer { return obs.NewServer(o) }

// NewSweepStatus returns an empty live sweep status board.
func NewSweepStatus() *SweepStatus { return sweep.NewStatus() }

// WritePrometheus renders an observer's instruments in the Prometheus
// text exposition format (the same body /metrics serves).
func WritePrometheus(w io.Writer, o *Observer) error { return obs.WritePrometheus(w, o) }

// ---- Hybrid fluid↔packet co-simulation (internal/hybrid) ----

// DataMTU is the data segment size shared by the analytic layer (which
// counts packets of this many bytes) and the packet simulator.
const DataMTU = hybrid.MTU

// Hybrid co-simulation types: equilibrium warm starts, fluid background
// aggregates superimposed on real switch queues, and the fluid-vs-packet
// cross-validation harness that uses the paper's fixed points as a
// regression oracle (the "crossval" experiment / CI gate).
type (
	// HybridWarmStart carries the analytic operating point in wire units,
	// ready to apply to packet-sim senders and queues.
	HybridWarmStart = hybrid.WarmStart
	// HybridPrefillFlow names one flow identity for queue prefilling.
	HybridPrefillFlow = hybrid.PrefillFlow
	// HybridDCQCNScenario is a matched fluid/packet DCQCN operating point.
	HybridDCQCNScenario = hybrid.DCQCNScenario
	// HybridTimelyScenario is the patched-TIMELY counterpart.
	HybridTimelyScenario = hybrid.TimelyScenario
	// HybridBackgroundConfig sizes a fluid background aggregate.
	HybridBackgroundConfig = hybrid.BackgroundConfig
	// HybridBackgroundAggregate is the ODE co-simulated with the packet net.
	HybridBackgroundAggregate = hybrid.BackgroundAggregate
	// HybridTolerance bounds acceptable fluid↔packet disagreement.
	HybridTolerance = hybrid.Tolerance
	// HybridOpPoint names one cross-validation operating point.
	HybridOpPoint = hybrid.OpPoint
	// HybridCheck is one oracle-vs-measured agreement test.
	HybridCheck = hybrid.Check
	// HybridResult is the outcome of cross-validating one operating point.
	HybridResult = hybrid.Result
	// HybridSettle quantifies time and DES events to steady state.
	HybridSettle = hybrid.Settle
)

// NewHybridDCQCNScenario returns the Table 1 operating point for n DCQCN
// flows on a 40 Gb/s bottleneck, realisable as fluid or packets.
func NewHybridDCQCNScenario(n int, seed int64) HybridDCQCNScenario {
	return hybrid.NewDCQCNScenario(n, seed)
}

// NewHybridTimelyScenario returns the §4.3 patched-TIMELY operating point.
func NewHybridTimelyScenario(n int, seed int64) HybridTimelyScenario {
	return hybrid.NewTimelyScenario(n, seed)
}

// SolveDCQCNWarmStart solves the Theorem 1 fixed point and converts it to
// wire units for packet-sim warm starting.
func SolveDCQCNWarmStart(pr DCQCNParams) (*HybridWarmStart, error) {
	return hybrid.DCQCNWarmStart(pr)
}

// SolveTimelyWarmStart builds the Eq. 31 patched-TIMELY warm start; qPrime
// <= 0 uses the default C·T_low.
func SolveTimelyWarmStart(n int, delta, beta, c, tLow, qPrime float64) (*HybridWarmStart, error) {
	return hybrid.TimelyWarmStart(n, delta, beta, c, tLow, qPrime)
}

// AttachFluidBackground couples a fluid background aggregate to port's
// queue; call before running the network.
func AttachFluidBackground(port *Port, cfg HybridBackgroundConfig) (*HybridBackgroundAggregate, error) {
	return hybrid.AttachBackground(port, cfg)
}

// DefaultHybridTolerance returns the bounds the crossval CI gate enforces.
func DefaultHybridTolerance() HybridTolerance { return hybrid.DefaultTolerance() }

// HybridCIOperatingPoints returns the operating points the crossval CI
// gate covers (two per protocol).
func HybridCIOperatingPoints() []HybridOpPoint { return hybrid.CIOperatingPoints() }

// RunHybridCrossVal cross-validates one operating point with the default
// tolerances; use the Result's Err for the verdict.
func RunHybridCrossVal(op HybridOpPoint, seed int64) (HybridResult, error) {
	return hybrid.RunOp(op, seed)
}
