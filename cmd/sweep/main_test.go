package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestBuildJobsPMMatrix(t *testing.T) {
	jobs, err := buildJobs("pm", "dcqcn,patched", "1,8,64", "1e-6,85e-6", "", "", false, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 flows × 2 delays for dcqcn, plus 3 patched rows.
	if len(jobs) != 9 {
		t.Fatalf("got %d jobs, want 9", len(jobs))
	}
	ids := map[string]bool{}
	for _, j := range jobs {
		if ids[j.ID] {
			t.Errorf("duplicate job id %q", j.ID)
		}
		ids[j.ID] = true
	}
	if !ids["pm/dcqcn/n8/d8.5e-05"] || !ids["pm/patched/n64"] {
		t.Errorf("unexpected id set: %v", ids)
	}
}

func TestBuildJobsExpMatrix(t *testing.T) {
	jobs, err := buildJobs("exp", "", "", "", "fig3,fig11", "1:4", false, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("got %d jobs, want 2 experiments × 4 seeds", len(jobs))
	}
	if jobs[0].ID != "fig3/seed1" || jobs[7].ID != "fig11/seed4" {
		t.Errorf("ids %q .. %q", jobs[0].ID, jobs[7].ID)
	}
}

func TestBuildJobsErrors(t *testing.T) {
	for _, c := range []struct{ kind, model, flows, delays, exp, seeds string }{
		{"nope", "", "", "", "", ""},
		{"pm", "quic", "1:4", "1e-6", "", ""},
		{"pm", "dcqcn", "4:1", "1e-6", "", ""},
		{"pm", "dcqcn", "1:4", "zzz", "", ""},
		{"exp", "", "", "", "notanexp", ""},
		{"exp", "", "", "", "fig3", "x"},
	} {
		if _, err := buildJobs(c.kind, c.model, c.flows, c.delays, c.exp, c.seeds, false, 1, nil); err == nil {
			t.Errorf("buildJobs(%+v) accepted", c)
		}
	}
}

// readRows parses a checkpoint file into rows keyed by job id (last row
// per id wins, matching resume semantics).
func readRows(t *testing.T, path string) map[string]map[string]interface{} {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows := map[string]map[string]interface{}{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad row %q: %v", sc.Text(), err)
		}
		rows[m["job"].(string)] = m
	}
	return rows
}

// A 16+ job grid run with -workers 4 must checkpoint the same rows as
// -workers 1, and a -resume re-run must skip everything.
func TestCLIGridDeterministicAndResume(t *testing.T) {
	dir := t.TempDir()
	grid := []string{"-kind", "pm", "-model", "dcqcn", "-flows", "1,2,8,10,32,64", "-delays", "1e-6,50e-6,85e-6", "-quiet"}

	runCLI := func(extra ...string) (string, int) {
		var errOut strings.Builder
		code := run(append(append([]string{}, grid...), extra...), &errOut)
		return errOut.String(), code
	}

	serialPath := filepath.Join(dir, "serial.jsonl")
	if errText, code := runCLI("-workers", "1", "-out", serialPath); code != 0 {
		t.Fatalf("serial run failed (%d): %s", code, errText)
	}
	parallelPath := filepath.Join(dir, "parallel.jsonl")
	if errText, code := runCLI("-workers", "4", "-out", parallelPath); code != 0 {
		t.Fatalf("parallel run failed (%d): %s", code, errText)
	}

	serial, parallel := readRows(t, serialPath), readRows(t, parallelPath)
	if len(serial) != 18 || len(parallel) != 18 {
		t.Fatalf("row counts %d / %d, want 18", len(serial), len(parallel))
	}
	canon := func(rows map[string]map[string]interface{}) string {
		ids := make([]string, 0, len(rows))
		for id := range rows {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var sb strings.Builder
		for _, id := range ids {
			b, _ := json.Marshal(rows[id])
			sb.Write(b)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if canon(serial) != canon(parallel) {
		t.Errorf("parallel checkpoint differs from serial:\n%s\nvs\n%s", canon(parallel), canon(serial))
	}

	// Simulate a killed run: keep only the first 5 lines, then resume.
	b, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	truncated := filepath.Join(dir, "resume.jsonl")
	if err := os.WriteFile(truncated, bytes.Join(lines[:5], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	errText, code := runCLI("-workers", "2", "-out", truncated, "-resume")
	if code != 0 {
		t.Fatalf("resume run failed (%d): %s", code, errText)
	}
	if !strings.Contains(errText, "resuming, 5 of 18 jobs already done") {
		t.Errorf("resume banner missing: %s", errText)
	}
	if got := readRows(t, truncated); len(got) != 18 || canon(got) != canon(serial) {
		t.Errorf("resumed checkpoint incomplete or divergent (%d rows)", len(got))
	}
}

func TestCLIUsageErrors(t *testing.T) {
	var errOut strings.Builder
	if code := run([]string{"-kind", "bogus"}, &errOut); code != 2 {
		t.Fatalf("bogus kind exit %d, want 2", code)
	}
	if code := run([]string{"-bogus-flag"}, &errOut); code != 2 {
		t.Fatalf("bogus flag exit %d, want 2", code)
	}
}
