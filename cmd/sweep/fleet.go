// Fleet modes: -coordinator serves the grid as TTL-leased shards on
// the telemetry port; -worker attaches to a coordinator, rebuilds the
// grid from the served spec, and streams rows back. The merged
// checkpoint is byte-identical to a serial -workers 1 run of the same
// grid flags, whatever workers join, die or reconnect mid-run.
package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ecndelay"
)

// gridSpec captures the grid flags verbatim; workers rebuild the job
// list from it, so they need no grid flags of their own and a stale
// binary is caught by the grid-hash check instead of corrupting rows.
func gridSpec(kind, model, flows, delays, expFlag, seeds string, full bool, shards int) map[string]string {
	return map[string]string{
		"kind":   kind,
		"model":  model,
		"flows":  flows,
		"delays": delays,
		"exp":    expFlag,
		"seeds":  seeds,
		"full":   strconv.FormatBool(full),
		"shards": strconv.Itoa(shards),
	}
}

// jobsFromSpec expands a served grid spec through the same builder the
// serial path uses.
func jobsFromSpec(spec map[string]string, o *ecndelay.Observer) ([]ecndelay.SweepJob, error) {
	full, err := strconv.ParseBool(spec["full"])
	if err != nil {
		return nil, fmt.Errorf("grid spec: bad full=%q: %v", spec["full"], err)
	}
	shards, err := strconv.Atoi(spec["shards"])
	if err != nil {
		return nil, fmt.Errorf("grid spec: bad shards=%q: %v", spec["shards"], err)
	}
	return buildJobs(spec["kind"], spec["model"], spec["flows"], spec["delays"],
		spec["exp"], spec["seeds"], full, shards, o)
}

// shutdownOnSignal drains the telemetry server with a bounded deadline
// before the process dies on SIGINT/SIGTERM, so in-flight scrapes
// complete instead of being cut mid-body. The returned stop func
// detaches the handler on the normal exit path.
func shutdownOnSignal(srv *ecndelay.TelemetryServer, stderr io.Writer) func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case s := <-ch:
			fmt.Fprintf(stderr, "sweep: %v: draining telemetry server\n", s)
			_ = srv.Shutdown(5 * time.Second)
			os.Exit(1)
		case <-done:
		}
	}()
	return func() { signal.Stop(ch); close(done) }
}

func logfTo(w io.Writer, quiet bool) func(string, ...any) {
	if quiet {
		return nil
	}
	return func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
}

// runCoordinator owns the fleet: grid expansion, lease books, the
// streamed JSONL checkpoint, and the merged telemetry. On completion it
// finalizes the checkpoint into canonical (serial) row order.
func runCoordinator(addr string, spec map[string]string, baseSeed int64, ttl time.Duration,
	shardSize int, out string, resume, quiet bool, stderr io.Writer) int {
	jobs, err := jobsFromSpec(spec, nil)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}

	// Load resumable rows before opening the sink: OpenJSONL appends a
	// healing newline the reader must not see mid-parse.
	var preloaded []ecndelay.SweepResult
	if resume {
		if preloaded, err = ecndelay.ReadSweepResults(out); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 2
		}
	}
	sink, err := ecndelay.OpenSweepJSONL(out, resume)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	defer sink.Close()

	reg := ecndelay.NewMetricsRegistry()
	hists := ecndelay.NewHistSet()
	observer := &ecndelay.Observer{Metrics: reg, Hists: hists}
	coord, err := ecndelay.NewFleetCoordinator(ecndelay.FleetCoordinatorConfig{
		JobIDs:    ids,
		Spec:      spec,
		BaseSeed:  baseSeed,
		LeaseTTL:  ttl,
		ShardSize: shardSize,
		Sink:      sink,
		Preloaded: preloaded,
		Metrics:   reg,
		Hists:     hists,
		Logf:      logfTo(stderr, quiet),
	})
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	defer coord.Close()

	srv := ecndelay.NewTelemetryServer(observer)
	coord.Attach(srv)
	bound, err := srv.Start(addr)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	defer srv.Shutdown(5 * time.Second)
	fmt.Fprintf(stderr, "sweep: fleet coordinator serving on http://%s (%d jobs, %d preloaded, shard size %d, lease TTL %v)\n",
		bound, len(ids), len(preloaded), shardSize, ttl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-coord.Done():
	case s := <-sig:
		snap := coord.Snapshot()
		fmt.Fprintf(stderr, "sweep: %v: stopping with %d/%d jobs checkpointed in %s; restart with -resume to continue\n",
			s, snap.DoneJobs, snap.TotalJobs, out)
		_ = srv.Shutdown(5 * time.Second)
		return 1
	}
	if err := coord.SinkErr(); err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 1
	}
	// Rewrite the append-order stream as the canonical index-order file
	// (byte-identical to a serial -workers 1 run).
	sink.Close()
	if err := coord.Finalize(out); err != nil {
		fmt.Fprintf(stderr, "sweep: finalizing %s: %v\n", out, err)
		return 1
	}
	snap := coord.Snapshot()
	fmt.Fprintf(stderr, "sweep: fleet complete: %d jobs (%d failed, %d requeued after %d expired leases, %d duplicate rows, %d spooled); finalized %s\n",
		snap.TotalJobs, snap.FailedJobs, snap.JobsRequeued, snap.LeasesExpired, snap.DuplicateRows, snap.SpooledRows, out)

	// Linger one lease TTL so polling workers hear done:true and exit
	// cleanly instead of backing off against a vanished coordinator.
	select {
	case <-time.After(ttl + 500*time.Millisecond):
	case <-sig:
	}
	if snap.FailedJobs > 0 {
		fmt.Fprintf(stderr, "sweep: %d of %d jobs failed (see %s)\n", snap.FailedJobs, snap.TotalJobs, out)
		return 1
	}
	return 0
}

// runWorker attaches to a coordinator and serves leases until the grid
// is done, spooling rows locally whenever the coordinator is away.
func runWorker(url, id, spool string, giveUp time.Duration, localWorkers int,
	timeout time.Duration, retries int, quiet bool, stderr io.Writer) int {
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	w, err := ecndelay.NewFleetWorker(ecndelay.FleetWorkerConfig{
		ID:      id,
		BaseURL: url,
		Build: func(spec map[string]string) ([]ecndelay.SweepJob, *ecndelay.Observer, error) {
			// Fresh observer per lease: its counter and histogram deltas
			// merge cleanly into the coordinator's aggregate.
			o := &ecndelay.Observer{Metrics: ecndelay.NewMetricsRegistry(), Hists: ecndelay.NewHistSet()}
			jobs, err := jobsFromSpec(spec, o)
			return jobs, o, err
		},
		Workers:     localWorkers,
		Timeout:     timeout,
		Retries:     retries,
		SpoolPath:   spool,
		GiveUpAfter: giveUp,
		Logf:        logfTo(stderr, quiet),
	})
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	if err := w.Run(); err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 1
	}
	return 0
}
