// Command sweep runs a parameter grid of experiments through the
// parallel sweep engine, checkpointing one JSONL row per job so an
// interrupted sweep resumes where it stopped.
//
// Three grid kinds exist:
//
//   - pm: phase-margin cells over model × flows × delays — the raw
//     numbers behind Figures 3 and 11:
//
//     sweep -kind pm -model dcqcn,patched -flows 1:64 \
//     -delays 1e-6,25e-6,50e-6,85e-6,100e-6 -workers 8 -out pm.jsonl
//
//   - exp: registered experiments (see ecnbench -list) × seeds:
//
//     sweep -kind exp -exp fig14,fig15 -seeds 1:8 -full \
//     -workers 4 -out fct.jsonl -resume
//
//   - crossval: the hybrid fluid↔packet cross-validation operating
//     points, one job each; a row fails if any oracle check lands
//     outside its tolerance:
//
//     sweep -kind crossval -workers 4 -out crossval.jsonl
//
// Each row records the job id, its grid coordinates, the derived seed
// and the experiment's metrics. Re-running with -resume skips every
// job already checkpointed as successful; failed jobs run again. Rows
// are deterministic: sorting the file by job id gives byte-identical
// output for any -workers value.
//
// Exit status: 0 if every job succeeded, 1 if any failed, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ecndelay"
	"ecndelay/internal/prof"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		kind       = fs.String("kind", "pm", "grid kind: pm | exp | crossval")
		model      = fs.String("model", "dcqcn", "pm: comma list of dcqcn | patched")
		flows      = fs.String("flows", "1:64", "pm: N range lo:hi or comma list")
		delays     = fs.String("delays", "1e-6,25e-6,50e-6,85e-6,100e-6", "pm: DCQCN τ* values, seconds")
		expFlag    = fs.String("exp", "all", "exp: experiment id, comma list, or 'all'")
		seeds      = fs.String("seeds", "", "exp: seed range lo:hi or comma list (empty: one derived seed per job)")
		full       = fs.Bool("full", false, "exp: paper-scale instead of quick")
		shards     = fs.Int("shards", 1, "exp: worker shards inside each packet-level job (1: serial)")
		out        = fs.String("out", "sweep.jsonl", "JSONL checkpoint file")
		resume     = fs.Bool("resume", false, "skip jobs already completed in -out")
		workers    = fs.Int("workers", 0, "parallel workers (0: GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 0, "per-job timeout (0: none)")
		retries    = fs.Int("retries", 0, "extra attempts per failed job")
		seed       = fs.Int64("seed", 1, "base seed for per-job seed derivation")
		quiet      = fs.Bool("quiet", false, "suppress progress reporting")

		metricsFile = fs.String("metrics", "", "exp: write end-of-run counters as TSV to this file")
		traceFile   = fs.String("trace", "", "exp: write per-job event traces as JSONL files derived from this path")
		probeFile   = fs.String("probe", "", "exp: write probe time series as JSONL to this file")
		probeEvery  = fs.Float64("probe-every", 1e-4, "exp: probe sampling cadence, seconds")
		invariants  = fs.Bool("invariants", false, "exp: check runtime invariants; violations exit nonzero")
		histFile    = fs.String("hist", "", "exp: write latency histogram percentiles to this file (.tsv: TSV, else JSONL)")
		auditFile   = fs.String("audit", "", "exp: write per-job control-loop audits as JSONL files derived from this path")
		serveAddr   = fs.String("serve", "", "serve live telemetry (/metrics, /progress, pprof) on this host:port")

		failFast  = fs.Bool("fail-fast", false, "stop dispatching new jobs after the first job exhausts its retries (completed rows are kept)")
		coordAddr = fs.String("coordinator", "", "run as fleet coordinator: serve shard leases and telemetry on this host:port")
		workerURL = fs.String("worker", "", "run as fleet worker attached to the coordinator at this URL (grid flags come from the coordinator)")
		workerID  = fs.String("worker-id", "", "fleet worker name (default worker-<pid>)")
		leaseTTL  = fs.Duration("lease-ttl", 10*time.Second, "coordinator: shard lease TTL; a worker silent this long loses its shard")
		shardSize = fs.Int("shard-size", 8, "coordinator: jobs per lease")
		spoolPath = fs.String("spool", "", "worker: local JSONL spool for rows while the coordinator is unreachable")
		giveUp    = fs.Duration("give-up", 0, "worker: exit once the coordinator has been unreachable this long (0: retry forever)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
		}
	}()

	switch {
	case *coordAddr != "" && *workerURL != "":
		fmt.Fprintln(stderr, "sweep: -coordinator and -worker are mutually exclusive")
		return 2
	case *failFast && (*coordAddr != "" || *workerURL != ""):
		fmt.Fprintln(stderr, "sweep: -fail-fast is serial-mode only (a fleet records failed rows and keeps going)")
		return 2
	case *coordAddr != "":
		return runCoordinator(*coordAddr,
			gridSpec(*kind, *model, *flows, *delays, *expFlag, *seeds, *full, *shards),
			*seed, *leaseTTL, *shardSize, *out, *resume, *quiet, stderr)
	case *workerURL != "":
		return runWorker(*workerURL, *workerID, *spoolPath, *giveUp, *workers, *timeout, *retries, *quiet, stderr)
	}

	// One shared observer serves every job: counters are atomic, the
	// checker serialises and keeps per-network books, and each job's
	// probes and histograms carry the job id as a name prefix
	// (ExperimentSweepJobs), so metrics, invariant verdicts and the
	// probe/histogram exports are the same for any -workers value. The
	// trace stream gets one file per job (derived from -trace via
	// TracePerJob), so each trace file is byte-identical for any -workers
	// value too. The pm grid is fluid-model only and never touches the
	// observer.
	// Self-describing header for every JSONL export; fs.Visit walks only
	// explicitly set flags, in name order. Flags that steer execution but
	// cannot change a row or an export record are excluded, so per-job
	// files stay byte-identical for any -workers value.
	header := func(schema string) ecndelay.ExportHeader {
		skip := map[string]bool{"workers": true, "quiet": true, "resume": true}
		var parts []string
		fs.Visit(func(f *flag.Flag) {
			if skip[f.Name] {
				return
			}
			parts = append(parts, f.Name+"="+f.Value.String())
		})
		return ecndelay.ExportHeader{
			Schema: schema, Version: 1, Seed: *seed,
			Flags: strings.Join(parts, " "),
		}
	}

	var observer *ecndelay.Observer
	var traces *jobTraces
	var audits *jobAudits
	if *metricsFile != "" || *traceFile != "" || *probeFile != "" || *invariants ||
		*histFile != "" || *serveAddr != "" || *auditFile != "" {
		observer = &ecndelay.Observer{ProbeEvery: ecndelay.DurationFromSeconds(*probeEvery)}
		if *metricsFile != "" || *serveAddr != "" {
			observer.Metrics = ecndelay.NewMetricsRegistry()
		}
		if *traceFile != "" {
			traces = &jobTraces{base: *traceFile, header: header("trace")}
			observer.TracePerJob = traces.tracer
		}
		if *probeFile != "" {
			observer.Probes = ecndelay.NewProbeSet()
			observer.Probes.SetHeader(header("probe"))
		}
		if *invariants {
			observer.Check = ecndelay.NewInvariantChecker()
		}
		if *histFile != "" || *serveAddr != "" || *auditFile != "" {
			observer.Hists = ecndelay.NewHistSet()
		}
		if *auditFile != "" {
			audits = &jobAudits{base: *auditFile, header: header("audit")}
			observer.AuditPerJob = audits.trail
		}
	}

	jobs, err := buildJobs(*kind, *model, *flows, *delays, *expFlag, *seeds, *full, *shards, observer)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}

	sink, err := ecndelay.OpenSweepJSONL(*out, *resume)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 2
	}
	defer sink.Close()
	if *resume && sink.Resumed() > 0 {
		// Count against this grid: a stale checkpoint may hold jobs
		// that are no longer part of it.
		done := 0
		for _, j := range jobs {
			if sink.Completed(j.ID) {
				done++
			}
		}
		fmt.Fprintf(stderr, "sweep: resuming, %d of %d jobs already done\n", done, len(jobs))
	}

	var status *ecndelay.SweepStatus
	if *serveAddr != "" {
		status = ecndelay.NewSweepStatus()
		srv := ecndelay.NewTelemetryServer(observer)
		srv.SetProgress(func() any { return status.Snapshot() })
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 2
		}
		// Drain in-flight scrapes on exit and on SIGINT/SIGTERM rather
		// than dropping them mid-body.
		defer srv.Shutdown(2 * time.Second)
		defer shutdownOnSignal(srv, stderr)()
		fmt.Fprintf(stderr, "sweep: serving telemetry on http://%s\n", addr)
	}

	var progress io.Writer
	if !*quiet {
		progress = stderr
	}
	sum, err := ecndelay.RunSweep(ecndelay.SweepConfig{
		Workers:  *workers,
		Timeout:  *timeout,
		Retries:  *retries,
		BaseSeed: *seed,
		Progress: progress,
		Status:   status,
		FailFast: *failFast,
	}, jobs, sink)
	if err != nil {
		fmt.Fprintf(stderr, "sweep: %v\n", err)
		return 1
	}
	if observer != nil {
		if code := finishObs(observer, traces, audits, *metricsFile, *probeFile, *histFile, stderr); code != 0 {
			return code
		}
	}
	if sum.Failed > 0 {
		if sum.Cancelled > 0 {
			fmt.Fprintf(stderr, "sweep: fail-fast: %d job(s) left undispatched after the first failure; completed rows are checkpointed in %s\n", sum.Cancelled, *out)
		}
		fmt.Fprintf(stderr, "sweep: %d of %d jobs failed (see %s)\n", sum.Failed, sum.Total, *out)
		return 1
	}
	return 0
}

// finishObs flushes the observability outputs and reports invariant
// violations; returns a nonzero exit code on failure.
func finishObs(o *ecndelay.Observer, traces *jobTraces, audits *jobAudits, metricsPath, probePath, histPath string, stderr io.Writer) int {
	if traces != nil {
		if err := traces.close(); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 1
		}
	}
	if audits != nil {
		if err := audits.close(); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 1
		}
	}
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if metricsPath != "" {
		if err := write(metricsPath, o.Metrics.WriteTSV); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 1
		}
	}
	if probePath != "" {
		if err := write(probePath, o.Probes.WriteJSONL); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 1
		}
	}
	if histPath != "" {
		fn := o.Hists.WriteJSONL
		if strings.HasSuffix(histPath, ".tsv") {
			fn = o.Hists.WriteTSV
		}
		if err := write(histPath, fn); err != nil {
			fmt.Fprintf(stderr, "sweep: %v\n", err)
			return 1
		}
	}
	if c := o.Check; c != nil && c.Total() > 0 {
		for _, v := range c.Violations() {
			fmt.Fprintf(stderr, "sweep: invariant violation: %s\n", v)
		}
		fmt.Fprintf(stderr, "sweep: %d invariant violation(s)\n", c.Total())
		return 1
	}
	return 0
}

// jobTraces opens one JSONL trace file per sweep job, deriving each
// path from the -trace flag value: trace.jsonl becomes
// trace.<jobid>.jsonl, with "/" in the job id replaced by "_". Because
// each job owns its file, every trace file is byte-identical for any
// -workers value. tracer is called from worker goroutines, so it
// serialises; the first open error is latched and surfaces at close.
type jobTraces struct {
	base   string
	header ecndelay.ExportHeader
	mu     sync.Mutex
	sinks  []*ecndelay.TraceJSONLSink
	err    error
}

// pathFor derives the per-job trace file name from the base path.
func (t *jobTraces) pathFor(jobID string) string {
	id := strings.ReplaceAll(jobID, "/", "_")
	ext := filepath.Ext(t.base)
	return strings.TrimSuffix(t.base, ext) + "." + id + ext
}

func (t *jobTraces) tracer(jobID string) *ecndelay.Tracer {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := os.Create(t.pathFor(jobID))
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return nil
	}
	sink := ecndelay.NewTraceJSONLSink(f)
	sink.WriteHeader(t.header)
	t.sinks = append(t.sinks, sink)
	return ecndelay.NewTracer(sink)
}

// close flushes every per-job file and returns the first error seen.
func (t *jobTraces) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.err
	for _, s := range t.sinks {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// jobAudits opens one control-loop audit trail per sweep job, writing
// audit.<jobid>.jsonl next to the -audit base path (jobTraces naming).
// Each job owns its file and the sink sorts into canonical record order
// on close, so every audit file is byte-identical for any -workers
// value. trail is called from worker goroutines, so it serialises; the
// first open error is latched and surfaces at close.
type jobAudits struct {
	base   string
	header ecndelay.ExportHeader
	mu     sync.Mutex
	sinks  []*ecndelay.AuditJSONLSink
	err    error
}

// pathFor derives the per-job audit file name from the base path.
func (a *jobAudits) pathFor(jobID string) string {
	id := strings.ReplaceAll(jobID, "/", "_")
	ext := filepath.Ext(a.base)
	return strings.TrimSuffix(a.base, ext) + "." + id + ext
}

func (a *jobAudits) trail(jobID string) *ecndelay.AuditTrail {
	a.mu.Lock()
	defer a.mu.Unlock()
	f, err := os.Create(a.pathFor(jobID))
	if err != nil {
		if a.err == nil {
			a.err = err
		}
		return nil
	}
	sink := ecndelay.NewAuditJSONLSink(f, 1<<16)
	sink.SetHeader(a.header)
	a.sinks = append(a.sinks, sink)
	return ecndelay.NewAuditTrail(sink)
}

// close flushes every per-job file and returns the first error seen.
func (a *jobAudits) close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	err := a.err
	for _, s := range a.sinks {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// buildJobs expands the flag grid into the job matrix.
func buildJobs(kind, model, flows, delays, expFlag, seeds string, full bool, shards int, obs *ecndelay.Observer) ([]ecndelay.SweepJob, error) {
	switch kind {
	case "pm":
		ns, err := parseInts(flows)
		if err != nil {
			return nil, fmt.Errorf("bad -flows: %v", err)
		}
		var jobs []ecndelay.SweepJob
		for _, m := range strings.Split(model, ",") {
			switch m = strings.TrimSpace(m); m {
			case "dcqcn":
				ds, err := parseFloats(delays)
				if err != nil {
					return nil, fmt.Errorf("bad -delays: %v", err)
				}
				for _, n := range ns {
					for _, d := range ds {
						jobs = append(jobs, pmDCQCNJob(n, d))
					}
				}
			case "patched":
				for _, n := range ns {
					jobs = append(jobs, pmPatchedJob(n))
				}
			default:
				return nil, fmt.Errorf("unknown -model %q", m)
			}
		}
		return jobs, nil
	case "exp":
		var ids []string
		if expFlag == "all" {
			for _, r := range ecndelay.Runners() {
				ids = append(ids, r.ID)
			}
		} else {
			for _, id := range strings.Split(expFlag, ",") {
				ids = append(ids, strings.TrimSpace(id))
			}
		}
		var seedList []int64
		if seeds != "" {
			ns, err := parseInts(seeds)
			if err != nil {
				return nil, fmt.Errorf("bad -seeds: %v", err)
			}
			for _, n := range ns {
				seedList = append(seedList, int64(n))
			}
		}
		opts := ecndelay.ExperimentOptions{Scale: ecndelay.Quick, Observer: obs, Shards: shards}
		if full {
			opts.Scale = ecndelay.Full
		}
		return ecndelay.ExperimentSweepJobs(ids, opts, seedList)
	case "crossval":
		var jobs []ecndelay.SweepJob
		for _, op := range ecndelay.HybridCIOperatingPoints() {
			jobs = append(jobs, crossvalJob(op))
		}
		return jobs, nil
	default:
		return nil, fmt.Errorf("unknown -kind %q (want pm, exp or crossval)", kind)
	}
}

// crossvalJob cross-validates one hybrid operating point. The row's
// metrics are the per-check relative errors; the job fails if any check
// lands outside its documented tolerance.
func crossvalJob(op ecndelay.HybridOpPoint) ecndelay.SweepJob {
	return ecndelay.SweepJob{
		ID:   fmt.Sprintf("crossval/%s/n%d", op.Proto, op.N),
		Meta: map[string]string{"proto": op.Proto, "flows": fmt.Sprint(op.N)},
		Run: func(seed int64) (map[string]float64, error) {
			res, err := ecndelay.RunHybridCrossVal(op, seed)
			if err != nil {
				return nil, err
			}
			m := make(map[string]float64, len(res.Checks))
			for _, c := range res.Checks {
				m[c.Name+"_rel"] = c.RelErr()
			}
			return m, res.Err()
		},
	}
}

// pmDCQCNJob computes one Figure 3 grid cell.
func pmDCQCNJob(n int, d float64) ecndelay.SweepJob {
	return ecndelay.SweepJob{
		ID:   fmt.Sprintf("pm/dcqcn/n%d/d%g", n, d),
		Meta: map[string]string{"model": "dcqcn", "flows": fmt.Sprint(n), "delay": fmt.Sprint(d)},
		Run: func(int64) (map[string]float64, error) {
			p := ecndelay.DefaultDCQCNParams(n)
			p.TauStar = d
			loop, err := ecndelay.NewDCQCNLoop(p)
			if err != nil {
				return nil, err
			}
			res, err := ecndelay.PhaseMargin(loop)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"pm_deg":          res.PhaseMarginDeg,
				"crossover_rad_s": res.CrossoverRadPerSec,
				"stable":          boolMetric(res.Stable),
			}, nil
		},
	}
}

// pmPatchedJob computes one Figure 11 row.
func pmPatchedJob(n int) ecndelay.SweepJob {
	return ecndelay.SweepJob{
		ID:   fmt.Sprintf("pm/patched/n%d", n),
		Meta: map[string]string{"model": "patched", "flows": fmt.Sprint(n)},
		Run: func(int64) (map[string]float64, error) {
			cfg := ecndelay.DefaultPatchedTimelyFluidConfig(n)
			loop, err := ecndelay.NewPatchedTimelyLoop(cfg)
			if err != nil {
				return nil, err
			}
			res, err := ecndelay.PhaseMargin(loop)
			if err != nil {
				return nil, err
			}
			sys, err := ecndelay.NewPatchedTimelyFluid(cfg)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"pm_deg":    res.PhaseMarginDeg,
				"q_star_kb": sys.FixedPointQueue() / 1000,
				"stable":    boolMetric(res.Stable),
			}, nil
		},
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// parseInts accepts "lo:hi" (inclusive range) or a comma list.
func parseInts(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, err
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, err
		}
		if a > b {
			return nil, fmt.Errorf("range %d:%d is backwards", a, b)
		}
		var out []int
		for i := a; i <= b; i++ {
			out = append(out, i)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseFloats accepts a comma list of floats.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
