// Command fluidsim integrates one of the paper's fluid models and writes
// the trajectory as TSV (time, queue, per-flow rates) for plotting.
//
//	fluidsim -model dcqcn -n 10 -delay 85e-6 -horizon 0.2 > dcqcn.tsv
//	fluidsim -model patched -n 2 -rates 875e6,375e6
//	fluidsim -model timelypi -n 2 -stagger 0.1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fluidsim: ")
	var (
		model   = flag.String("model", "dcqcn", "dcqcn | timely | patched | dcqcnpi | timelypi")
		n       = flag.Int("n", 2, "number of flows")
		delay   = flag.Float64("delay", 4e-6, "DCQCN feedback delay τ* (seconds)")
		jitter  = flag.Float64("jitter", 0, "uniform feedback jitter bound (seconds)")
		horizon = flag.Float64("horizon", 0.1, "simulated seconds")
		step    = flag.Float64("step", 1e-6, "integration step (seconds)")
		sample  = flag.Float64("sample", 1e-4, "output sampling interval (seconds)")
		rates   = flag.String("rates", "", "comma-separated initial rates (model units)")
		stagger = flag.Float64("stagger", 0, "start time of the last flow (seconds)")
		seed    = flag.Int64("seed", 1, "jitter seed")
	)
	flag.Parse()

	var initial []float64
	if *rates != "" {
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				log.Fatalf("bad -rates: %v", err)
			}
			initial = append(initial, v)
		}
		if len(initial) != *n {
			log.Fatalf("-rates has %d entries, -n is %d", len(initial), *n)
		}
	}
	var starts []float64
	if *stagger > 0 {
		starts = make([]float64, *n)
		starts[*n-1] = *stagger
	}

	var (
		sys    ecndelay.FluidModel
		labels []string
		err    error
	)
	switch *model {
	case "dcqcn":
		p := ecndelay.DefaultDCQCNParams(*n)
		p.TauStar = *delay
		m, e := ecndelay.NewDCQCNFluid(ecndelay.DCQCNFluidConfig{
			Params: p, InitialRC: initial, JitterMax: *jitter, Seed: *seed,
		})
		sys, err = m, e
		labels = dcqcnLabels(m, *n)
	case "timely", "patched":
		cfg := ecndelay.DefaultTimelyFluidConfig(*n)
		if *model == "patched" {
			cfg = ecndelay.DefaultPatchedTimelyFluidConfig(*n)
		}
		cfg.InitialRates = initial
		cfg.StartTimes = starts
		cfg.JitterMax = *jitter
		cfg.Seed = *seed
		if *model == "patched" {
			m, e := ecndelay.NewPatchedTimelyFluid(cfg)
			sys, err = m, e
			labels = timelyLabels(*n)
		} else {
			m, e := ecndelay.NewTimelyFluid(cfg)
			sys, err = m, e
			labels = timelyLabels(*n)
		}
	case "dcqcnpi":
		p := ecndelay.DefaultDCQCNParams(*n)
		p.TauStar = *delay
		m, e := ecndelay.NewDCQCNPIFluid(ecndelay.DCQCNPIConfig{
			DCQCN: ecndelay.DCQCNFluidConfig{Params: p, InitialRC: initial, JitterMax: *jitter, Seed: *seed},
		})
		sys, err = m, e
		labels = dcqcnPILabels(*n)
	case "timelypi":
		cfg := ecndelay.DefaultPatchedTimelyFluidConfig(*n)
		cfg.InitialRates = initial
		cfg.StartTimes = starts
		m, e := ecndelay.NewTimelyPIFluid(ecndelay.TimelyPIConfig{Timely: cfg})
		sys, err = m, e
		labels = timelyPILabels(*n)
	default:
		log.Fatalf("unknown -model %q", *model)
	}
	if err != nil {
		log.Fatal(err)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "# "+strings.Join(labels, "\t"))
	for _, s := range ecndelay.RunFluid(sys, *step, *horizon, *sample) {
		fmt.Fprintf(out, "%.6f", s.T)
		for _, v := range s.Y {
			fmt.Fprintf(out, "\t%.6g", v)
		}
		fmt.Fprintln(out)
	}
}

func dcqcnLabels(m *ecndelay.DCQCNFluid, n int) []string {
	labels := []string{"t", "q_pkts"}
	for i := 0; i < n; i++ {
		labels = append(labels, fmt.Sprintf("alpha%d", i), fmt.Sprintf("rt%d", i), fmt.Sprintf("rc%d", i))
	}
	_ = m
	return labels
}

func dcqcnPILabels(n int) []string {
	labels := []string{"t", "q_pkts", "p"}
	for i := 0; i < n; i++ {
		labels = append(labels, fmt.Sprintf("alpha%d", i), fmt.Sprintf("rt%d", i), fmt.Sprintf("rc%d", i))
	}
	return labels
}

func timelyLabels(n int) []string {
	labels := []string{"t", "q_bytes"}
	for i := 0; i < n; i++ {
		labels = append(labels, fmt.Sprintf("rate%d", i), fmt.Sprintf("grad%d", i))
	}
	return labels
}

func timelyPILabels(n int) []string {
	labels := []string{"t", "q_bytes"}
	for i := 0; i < n; i++ {
		labels = append(labels, fmt.Sprintf("rate%d", i), fmt.Sprintf("grad%d", i), fmt.Sprintf("p%d", i))
	}
	return labels
}
