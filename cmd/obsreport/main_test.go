package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseJSONL = `{"hist":"timely.rtt_s","count":378,"min":5.7e-06,"max":0.0012,"p50":6.1e-05,"p90":4.1e-04,"p95":6.0e-04,"p99":9.0e-04,"p999":1.1e-03}
{"hist":"dcqcn.cnp_gap_s","count":2077,"min":5.0e-05,"max":0.0074,"p50":6.4e-05,"p90":1.4e-03,"p95":2.2e-03,"p99":3.7e-03,"p999":5.3e-03}
{"probe":"queue_bytes","dropped":12}
`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestIdenticalRunsPass(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	cand := writeFile(t, dir, "new.jsonl", baseJSONL)
	out, errText, code := runCLI(t, "-base", base, "-new", cand)
	if code != 0 {
		t.Fatalf("identical runs exit %d: %s%s", code, out, errText)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("identical runs flagged a regression:\n%s", out)
	}
	if !strings.Contains(out, "ok         timely.rtt_s p99") {
		t.Errorf("comparison table missing expected row:\n%s", out)
	}
}

func TestInjectedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	// p99 of timely.rtt_s inflated 50%, everything else unchanged.
	worse := strings.Replace(baseJSONL, `"p99":9.0e-04`, `"p99":1.35e-03`, 1)
	cand := writeFile(t, dir, "new.jsonl", worse)
	out, errText, code := runCLI(t, "-base", base, "-new", cand, "-threshold", "0.10")
	if code != 1 {
		t.Fatalf("regressed run exit %d, want 1: %s%s", code, out, errText)
	}
	if !strings.Contains(out, "REGRESSION timely.rtt_s p99") {
		t.Errorf("regressed percentile not flagged:\n%s", out)
	}
	if !strings.Contains(errText, "1 regression(s)") {
		t.Errorf("summary line missing: %s", errText)
	}
	// The same delta passes under a looser threshold.
	if _, _, code := runCLI(t, "-base", base, "-new", cand, "-threshold", "0.60"); code != 0 {
		t.Errorf("50%% delta must pass a 60%% threshold, got exit %d", code)
	}
}

func TestImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	better := strings.Replace(baseJSONL, `"p99":9.0e-04`, `"p99":4.0e-04`, 1)
	cand := writeFile(t, dir, "new.jsonl", better)
	out, _, code := runCLI(t, "-base", base, "-new", cand)
	if code != 0 {
		t.Fatalf("improvement exits %d:\n%s", code, out)
	}
}

func TestMissingHistogramFailsUnlessAllowed(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	oneOnly := `{"hist":"timely.rtt_s","count":378,"min":5.7e-06,"max":0.0012,"p50":6.1e-05,"p90":4.1e-04,"p95":6.0e-04,"p99":9.0e-04,"p999":1.1e-03}` + "\n"
	cand := writeFile(t, dir, "new.jsonl", oneOnly)
	out, _, code := runCLI(t, "-base", base, "-new", cand)
	if code != 1 || !strings.Contains(out, "MISSING    dcqcn.cnp_gap_s") {
		t.Fatalf("missing histogram not flagged (exit %d):\n%s", code, out)
	}
	if _, _, code := runCLI(t, "-base", base, "-new", cand, "-allow-missing"); code != 0 {
		t.Errorf("-allow-missing still fails: exit %d", code)
	}
}

func TestNewHistogramIsInformational(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	extra := baseJSONL + `{"hist":"brand.new_s","count":5,"min":1,"max":2,"p50":1,"p90":2,"p95":2,"p99":2,"p999":2}` + "\n"
	cand := writeFile(t, dir, "new.jsonl", extra)
	out, _, code := runCLI(t, "-base", base, "-new", cand)
	if code != 0 {
		t.Fatalf("candidate-only histogram must not fail, exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "brand.new_s: new histogram") {
		t.Errorf("candidate-only histogram not reported:\n%s", out)
	}
}

func TestZeroBaselineRegresses(t *testing.T) {
	dir := t.TempDir()
	zero := `{"hist":"h","count":1,"min":0,"max":0,"p50":0,"p90":0,"p95":0,"p99":0,"p999":0}` + "\n"
	nonzero := `{"hist":"h","count":1,"min":0,"max":1,"p50":1,"p90":1,"p95":1,"p99":1,"p999":1}` + "\n"
	base := writeFile(t, dir, "base.jsonl", zero)
	cand := writeFile(t, dir, "new.jsonl", nonzero)
	if _, _, code := runCLI(t, "-base", base, "-new", cand, "-threshold", "1e9"); code != 1 {
		t.Errorf("0 -> 1 must regress under any threshold, exit %d", code)
	}
	same := writeFile(t, dir, "same.jsonl", zero)
	if _, _, code := runCLI(t, "-base", base, "-new", same); code != 0 {
		t.Errorf("0 -> 0 must pass, exit %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	for _, args := range [][]string{
		{},
		{"-base", base},
		{"-base", base, "-new", filepath.Join(dir, "nope.jsonl")},
		{"-base", base, "-new", base, "-quantiles", "p42"},
		{"-base", base, "-new", base, "-quantiles", ","},
	} {
		if _, _, code := runCLI(t, args...); code != 2 {
			t.Errorf("args %v exit %d, want 2", args, code)
		}
	}
	empty := writeFile(t, dir, "empty.jsonl", "")
	if _, _, code := runCLI(t, "-base", empty, "-new", base); code != 2 {
		t.Errorf("empty baseline must be a usage error")
	}
}

// An empty candidate export (a run that produced no histograms) fails the
// gate for every baseline histogram — unless -allow-missing waives it.
func TestEmptyCandidateExport(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	cand := writeFile(t, dir, "new.jsonl", "")
	out, errText, code := runCLI(t, "-base", base, "-new", cand)
	if code != 1 {
		t.Fatalf("empty candidate exit %d, want 1:\n%s%s", code, out, errText)
	}
	if !strings.Contains(errText, "2 regression(s)") {
		t.Errorf("both baseline histograms should be flagged missing: %s", errText)
	}
	if _, _, code := runCLI(t, "-base", base, "-new", cand, "-allow-missing"); code != 0 {
		t.Errorf("-allow-missing should tolerate an empty candidate, exit %d", code)
	}
}

// A candidate written with a narrower quantile set (absent keys decode to
// zero) must not sneak past as an "improvement" on the missing columns:
// restricting -quantiles to the shared set is the supported comparison.
func TestMismatchedQuantileSets(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	narrow := `{"hist":"timely.rtt_s","count":378,"p50":6.1e-05,"p99":9.0e-04}
{"hist":"dcqcn.cnp_gap_s","count":2077,"p50":6.4e-05,"p99":3.7e-03}
`
	cand := writeFile(t, dir, "new.jsonl", narrow)
	// Full-set comparison sees p90 collapse to 0 — an "improvement", so it
	// passes; the note is the count drift, not the zeros.
	if _, _, code := runCLI(t, "-base", base, "-new", cand); code != 0 {
		t.Fatalf("absent-column zeros read as improvements, exit %d", code)
	}
	// Restricted to the shared columns the comparison is meaningful.
	out, _, code := runCLI(t, "-base", base, "-new", cand, "-quantiles", "p50,p99")
	if code != 0 {
		t.Fatalf("shared-column comparison exit %d:\n%s", code, out)
	}
	if strings.Contains(out, "p90") {
		t.Errorf("-quantiles p50,p99 still compared p90:\n%s", out)
	}
	// And the reverse direction — baseline narrow, candidate full — trips
	// the zero-baseline rule on the baseline's absent columns.
	if _, _, code := runCLI(t, "-base", cand, "-new", base, "-quantiles", "p90"); code != 1 {
		t.Errorf("0-baseline column must regress, exit %d", code)
	}
}

// Self-describing header lines (schema records without a "hist" key) are
// skipped, like the probe trailer rows.
func TestHeaderLineTolerated(t *testing.T) {
	dir := t.TempDir()
	withHeader := `{"schema":"hist","v":1,"seed":1,"proto":"dcqcn","flags":""}` + "\n" + baseJSONL
	base := writeFile(t, dir, "base.jsonl", withHeader)
	cand := writeFile(t, dir, "new.jsonl", baseJSONL)
	if out, errText, code := runCLI(t, "-base", base, "-new", cand); code != 0 {
		t.Fatalf("header line broke the comparison (exit %d):\n%s%s", code, out, errText)
	}
}

func TestMalformedLineIsIOError(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	bad := writeFile(t, dir, "bad.jsonl", "{not json\n")
	_, errText, code := runCLI(t, "-base", base, "-new", bad)
	if code != 2 {
		t.Fatalf("malformed candidate exit %d, want 2", code)
	}
	if !strings.Contains(errText, "bad.jsonl:1") {
		t.Errorf("error should name file and line: %s", errText)
	}
}

// -quiet prints regressed rows only.
func TestQuietSuppressesOKRows(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	worse := strings.Replace(baseJSONL, `"p99":9.0e-04`, `"p99":1.35e-03`, 1)
	cand := writeFile(t, dir, "new.jsonl", worse)
	out, _, code := runCLI(t, "-base", base, "-new", cand, "-quiet")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if strings.Contains(out, "ok ") || strings.Contains(out, "note") {
		t.Errorf("-quiet leaked non-regression rows:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION timely.rtt_s p99") {
		t.Errorf("-quiet dropped the regression row:\n%s", out)
	}
}
