package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseJSONL = `{"hist":"timely.rtt_s","count":378,"min":5.7e-06,"max":0.0012,"p50":6.1e-05,"p90":4.1e-04,"p95":6.0e-04,"p99":9.0e-04,"p999":1.1e-03}
{"hist":"dcqcn.cnp_gap_s","count":2077,"min":5.0e-05,"max":0.0074,"p50":6.4e-05,"p90":1.4e-03,"p95":2.2e-03,"p99":3.7e-03,"p999":5.3e-03}
{"probe":"queue_bytes","dropped":12}
`

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestIdenticalRunsPass(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	cand := writeFile(t, dir, "new.jsonl", baseJSONL)
	out, errText, code := runCLI(t, "-base", base, "-new", cand)
	if code != 0 {
		t.Fatalf("identical runs exit %d: %s%s", code, out, errText)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("identical runs flagged a regression:\n%s", out)
	}
	if !strings.Contains(out, "ok         timely.rtt_s p99") {
		t.Errorf("comparison table missing expected row:\n%s", out)
	}
}

func TestInjectedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	// p99 of timely.rtt_s inflated 50%, everything else unchanged.
	worse := strings.Replace(baseJSONL, `"p99":9.0e-04`, `"p99":1.35e-03`, 1)
	cand := writeFile(t, dir, "new.jsonl", worse)
	out, errText, code := runCLI(t, "-base", base, "-new", cand, "-threshold", "0.10")
	if code != 1 {
		t.Fatalf("regressed run exit %d, want 1: %s%s", code, out, errText)
	}
	if !strings.Contains(out, "REGRESSION timely.rtt_s p99") {
		t.Errorf("regressed percentile not flagged:\n%s", out)
	}
	if !strings.Contains(errText, "1 regression(s)") {
		t.Errorf("summary line missing: %s", errText)
	}
	// The same delta passes under a looser threshold.
	if _, _, code := runCLI(t, "-base", base, "-new", cand, "-threshold", "0.60"); code != 0 {
		t.Errorf("50%% delta must pass a 60%% threshold, got exit %d", code)
	}
}

func TestImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	better := strings.Replace(baseJSONL, `"p99":9.0e-04`, `"p99":4.0e-04`, 1)
	cand := writeFile(t, dir, "new.jsonl", better)
	out, _, code := runCLI(t, "-base", base, "-new", cand)
	if code != 0 {
		t.Fatalf("improvement exits %d:\n%s", code, out)
	}
}

func TestMissingHistogramFailsUnlessAllowed(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	oneOnly := `{"hist":"timely.rtt_s","count":378,"min":5.7e-06,"max":0.0012,"p50":6.1e-05,"p90":4.1e-04,"p95":6.0e-04,"p99":9.0e-04,"p999":1.1e-03}` + "\n"
	cand := writeFile(t, dir, "new.jsonl", oneOnly)
	out, _, code := runCLI(t, "-base", base, "-new", cand)
	if code != 1 || !strings.Contains(out, "MISSING    dcqcn.cnp_gap_s") {
		t.Fatalf("missing histogram not flagged (exit %d):\n%s", code, out)
	}
	if _, _, code := runCLI(t, "-base", base, "-new", cand, "-allow-missing"); code != 0 {
		t.Errorf("-allow-missing still fails: exit %d", code)
	}
}

func TestNewHistogramIsInformational(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	extra := baseJSONL + `{"hist":"brand.new_s","count":5,"min":1,"max":2,"p50":1,"p90":2,"p95":2,"p99":2,"p999":2}` + "\n"
	cand := writeFile(t, dir, "new.jsonl", extra)
	out, _, code := runCLI(t, "-base", base, "-new", cand)
	if code != 0 {
		t.Fatalf("candidate-only histogram must not fail, exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "brand.new_s: new histogram") {
		t.Errorf("candidate-only histogram not reported:\n%s", out)
	}
}

func TestZeroBaselineRegresses(t *testing.T) {
	dir := t.TempDir()
	zero := `{"hist":"h","count":1,"min":0,"max":0,"p50":0,"p90":0,"p95":0,"p99":0,"p999":0}` + "\n"
	nonzero := `{"hist":"h","count":1,"min":0,"max":1,"p50":1,"p90":1,"p95":1,"p99":1,"p999":1}` + "\n"
	base := writeFile(t, dir, "base.jsonl", zero)
	cand := writeFile(t, dir, "new.jsonl", nonzero)
	if _, _, code := runCLI(t, "-base", base, "-new", cand, "-threshold", "1e9"); code != 1 {
		t.Errorf("0 -> 1 must regress under any threshold, exit %d", code)
	}
	same := writeFile(t, dir, "same.jsonl", zero)
	if _, _, code := runCLI(t, "-base", base, "-new", same); code != 0 {
		t.Errorf("0 -> 0 must pass, exit %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.jsonl", baseJSONL)
	for _, args := range [][]string{
		{},
		{"-base", base},
		{"-base", base, "-new", filepath.Join(dir, "nope.jsonl")},
		{"-base", base, "-new", base, "-quantiles", "p42"},
		{"-base", base, "-new", base, "-quantiles", ","},
	} {
		if _, _, code := runCLI(t, args...); code != 2 {
			t.Errorf("args %v exit %d, want 2", args, code)
		}
	}
	empty := writeFile(t, dir, "empty.jsonl", "")
	if _, _, code := runCLI(t, "-base", empty, "-new", base); code != 2 {
		t.Errorf("empty baseline must be a usage error")
	}
}
