// Command obsreport compares the latency-histogram exports of two runs
// and flags percentile regressions, giving CI an automated
// perf-trajectory gate over the JSONL artifacts that packetsim,
// ecnbench and sweep write with -hist:
//
//	obsreport -base golden.jsonl -new current.jsonl
//	obsreport -base a.jsonl -new b.jsonl -threshold 0.05 -quantiles p99,p999
//
// Both inputs are histogram JSONL files: one object per line with a
// "hist" name, sample count, min/max and the exported percentiles.
// For every histogram present in both files, each selected percentile
// is compared; a relative increase beyond -threshold is a regression
// (latency distributions: higher is worse). A histogram missing from
// the candidate file is a regression too, unless -allow-missing is
// set; histograms only in the candidate are reported but never fail.
//
// Exit status: 0 when no percentile regressed, 1 on any regression,
// 2 on usage or I/O errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// histRow mirrors one line of a HistSet JSONL export. Probe records
// (the trailing {"probe":...,"dropped":...} lines of a combined export)
// have no "hist" key and are skipped.
type histRow struct {
	Hist  string  `json:"hist"`
	Count float64 `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// field maps a -quantiles column name to its value in a row.
func (r *histRow) field(name string) (float64, bool) {
	switch name {
	case "min":
		return r.Min, true
	case "max":
		return r.Max, true
	case "p50":
		return r.P50, true
	case "p90":
		return r.P90, true
	case "p95":
		return r.P95, true
	case "p99":
		return r.P99, true
	case "p999":
		return r.P999, true
	}
	return 0, false
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath     = fs.String("base", "", "baseline histogram JSONL (required)")
		newPath      = fs.String("new", "", "candidate histogram JSONL (required)")
		threshold    = fs.Float64("threshold", 0.10, "relative regression threshold per percentile (0.10 = +10%)")
		quantiles    = fs.String("quantiles", "p50,p90,p95,p99,p999", "comma list of columns to compare: min,max,p50,p90,p95,p99,p999")
		allowMissing = fs.Bool("allow-missing", false, "don't fail when a baseline histogram is absent from the candidate")
		quiet        = fs.Bool("quiet", false, "print only regressed rows")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "obsreport: -base and -new are both required")
		return 2
	}
	var cols []string
	for _, q := range strings.Split(*quantiles, ",") {
		q = strings.TrimSpace(q)
		if q == "" {
			continue
		}
		if _, ok := (&histRow{}).field(q); !ok {
			fmt.Fprintf(stderr, "obsreport: unknown quantile column %q\n", q)
			return 2
		}
		cols = append(cols, q)
	}
	if len(cols) == 0 {
		fmt.Fprintln(stderr, "obsreport: -quantiles selects no columns")
		return 2
	}

	base, err := readHists(*basePath)
	if err != nil {
		fmt.Fprintf(stderr, "obsreport: %v\n", err)
		return 2
	}
	cand, err := readHists(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "obsreport: %v\n", err)
		return 2
	}
	if len(base) == 0 {
		fmt.Fprintf(stderr, "obsreport: %s holds no histograms\n", *basePath)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	regressions := 0
	for _, name := range names {
		b := base[name]
		n, ok := cand[name]
		if !ok {
			if *allowMissing {
				fmt.Fprintf(w, "MISSING    %s (allowed)\n", name)
				continue
			}
			fmt.Fprintf(w, "MISSING    %s: in baseline only\n", name)
			regressions++
			continue
		}
		for _, col := range cols {
			bv, _ := b.field(col)
			nv, _ := n.field(col)
			delta := relDelta(bv, nv)
			regressed := delta > *threshold
			if regressed {
				regressions++
			}
			if *quiet && !regressed {
				continue
			}
			verdict := "ok"
			if regressed {
				verdict = "REGRESSION"
			}
			fmt.Fprintf(w, "%-10s %s %s: %.6g -> %.6g (%+.1f%%)\n",
				verdict, name, col, bv, nv, delta*100)
		}
		if b.Count != n.Count && !*quiet {
			fmt.Fprintf(w, "note       %s: sample count %.0f -> %.0f\n", name, b.Count, n.Count)
		}
	}
	for name := range cand {
		if _, ok := base[name]; !ok && !*quiet {
			fmt.Fprintf(w, "note       %s: new histogram, no baseline\n", name)
		}
	}
	if regressions > 0 {
		w.Flush()
		fmt.Fprintf(stderr, "obsreport: %d regression(s) beyond %+.1f%%\n", regressions, *threshold*100)
		return 1
	}
	return 0
}

// relDelta reports the relative increase from base to cand. A zero
// baseline regresses only if the candidate is positive: latency
// percentiles are non-negative, so going from 0 to anything is growth
// no finite threshold should excuse.
func relDelta(base, cand float64) float64 {
	if base == 0 {
		if cand > 0 {
			return 1e18 // effectively +inf: trips any finite threshold
		}
		return 0
	}
	return (cand - base) / base
}

// readHists parses a histogram JSONL export into rows keyed by name.
func readHists(path string) (map[string]*histRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows := map[string]*histRow{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var r histRow
		if err := json.Unmarshal([]byte(text), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if r.Hist == "" {
			continue // probe or foreign record
		}
		rows[r.Hist] = &r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rows, nil
}
