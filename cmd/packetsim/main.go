// Command packetsim runs long-lived flows through the packet-level
// simulator and writes the bottleneck queue and per-flow rate series as
// TSV.
//
//	packetsim -proto dcqcn -n 10 -bw 40e9 -extra-delay 85e-6
//	packetsim -proto timely -n 2 -rates 875e6,375e6
//	packetsim -proto patched -n 2 -burst
//
// Hybrid fluid↔packet co-simulation (internal/hybrid): -warm-start begins
// the run at the analytic fixed point (rates, α, prefilled bottleneck
// queue) instead of the cold start, and -bg-flows couples a DCQCN fluid
// background aggregate to the bottleneck queue so a handful of packet
// flows can be studied against a large modelled population:
//
//	packetsim -proto dcqcn -n 10 -bw 40e9 -warm-start
//	packetsim -proto dcqcn -n 2 -bw 40e9 -bg-flows 6
//
// Multi-core runs shard the node set over worker simulators; the TSV body
// is identical to the serial engine for any shard count (a sharded run
// adds one header comment naming the partition):
//
//	packetsim -proto timely -topology clos -radix 6 -n 20 -shards 4
//
// Fault injection (all off by default; output stays deterministic for
// fixed -seed and -fault-seed, which is what the Makefile determinism
// gate diffs):
//
//	packetsim -proto dcqcn -loss 1e-3 -ctrl-loss 1e-2 -recovery
//	packetsim -proto dcqcn -flap 0.01,0.02 -recovery
//	packetsim -proto dcqcn -qcap 100000 -recovery
//	packetsim -proto dcqcn -pfc-pause 300000 -pfc-resume 150000 -pfc-watchdog 1e-3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ecndelay"
	"ecndelay/internal/prof"
)

// shutdownOnSignal drains the telemetry server with a bounded deadline
// before the process dies on SIGINT/SIGTERM, so in-flight scrapes
// complete instead of being cut mid-body.
func shutdownOnSignal(srv *ecndelay.TelemetryServer) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		log.Printf("%v: draining telemetry server", s)
		_ = srv.Shutdown(5 * time.Second)
		os.Exit(1)
	}()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("packetsim: ")
	var (
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		proto      = flag.String("proto", "dcqcn", "dcqcn | timely | patched")
		topology   = flag.String("topology", "star", "star | dumbbell | parkinglot | clos")
		radix      = flag.Int("radix", 4, "clos: switch radix k (even; k**3/4 hosts at 3 tiers)")
		tiers      = flag.Int("tiers", 3, "clos: fabric depth, 2 (leaf-spine) or 3 (fat tree)")
		oversub    = flag.Float64("oversub", 1, "clos: leaf oversubscription ratio (>= 1)")
		hops       = flag.Int("hops", 3, "parkinglot: switches in the chain")
		n          = flag.Int("n", 2, "number of senders (one long flow each)")
		bw         = flag.Float64("bw", 10e9, "link bandwidth, bits/s")
		extraDelay = flag.Float64("extra-delay", 0, "extra feedback delay, seconds")
		jitter     = flag.Float64("jitter", 0, "uniform feedback jitter bound, seconds")
		ingress    = flag.Bool("ingress", false, "mark ECN at ingress instead of egress (DCQCN)")
		burst      = flag.Bool("burst", false, "TIMELY per-burst pacing")
		seg        = flag.Int("seg", 0, "TIMELY segment bytes (0: default 16000)")
		horizon    = flag.Float64("horizon", 0.1, "simulated seconds")
		shards     = flag.Int("shards", 1, "worker shards for the parallel engine (1: serial)")
		sample     = flag.Float64("sample", 1e-4, "output sampling interval, seconds")
		rates      = flag.String("rates", "", "comma-separated TIMELY start rates, bytes/s")
		seed       = flag.Int64("seed", 1, "simulation seed")
		warmStart  = flag.Bool("warm-start", false, "start endpoints and the bottleneck queue at the analytic fixed point (dcqcn | patched)")
		bgFlows    = flag.Int("bg-flows", 0, "DCQCN fluid background flows coupled to the bottleneck queue (0: off)")

		lossRate  = flag.Float64("loss", 0, "i.i.d. data loss rate on the bottleneck port")
		ctrlLoss  = flag.Float64("ctrl-loss", 0, "i.i.d. ack/NACK/CNP loss rate on the receiver NIC")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault draws")
		flapSpec  = flag.String("flap", "", "bottleneck link flap: down,up seconds (up 0 = stays down)")
		recovery  = flag.Bool("recovery", false, "go-back-N loss recovery at the endpoints")
		rto       = flag.Float64("rto", 0, "retransmission timeout, seconds (0: protocol default)")
		qcap      = flag.Int("qcap", 0, "switch egress queue capacity, bytes (0: unbounded)")
		pfcPause  = flag.Int("pfc-pause", 0, "PFC pause threshold, bytes (0: PFC off)")
		pfcResume = flag.Int("pfc-resume", 0, "PFC resume threshold, bytes")
		pfcWatch  = flag.Float64("pfc-watchdog", 0, "flag pauses sustained this many seconds (0: off)")

		metricsFile = flag.String("metrics", "", "write end-of-run counters as TSV to this file")
		traceFile   = flag.String("trace", "", "stream the event trace as JSONL to this file")
		probeFile   = flag.String("probe", "", "write probe time series as JSONL to this file")
		probeEvery  = flag.Float64("probe-every", 1e-4, "probe sampling cadence, seconds")
		invariants  = flag.Bool("invariants", false, "check runtime invariants; violations exit nonzero")
		histFile    = flag.String("hist", "", "write latency histogram percentiles to this file (.tsv: TSV, else JSONL)")
		auditFile   = flag.String("audit", "", "write the control-loop decision audit as JSONL to this file")
		serveAddr   = flag.String("serve", "", "serve live telemetry (/metrics, /progress, pprof) on this host:port")
	)
	flag.Parse()

	// Every JSONL export opens with the same self-describing header, so a
	// reader can tell which invocation produced a file without the shell
	// history. flag.Visit walks only explicitly set flags, in name order.
	header := func(schema string) ecndelay.ExportHeader {
		var parts []string
		flag.Visit(func(f *flag.Flag) {
			parts = append(parts, f.Name+"="+f.Value.String())
		})
		return ecndelay.ExportHeader{
			Schema: schema, Version: 1, Seed: *seed, Proto: *proto,
			Flags: strings.Join(parts, " "),
		}
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	// Observability: build the observer before any topology exists so
	// ports and endpoints bind their counters. All extra output goes to
	// separate files — stdout stays byte-identical to an unobserved run.
	var observer *ecndelay.Observer
	var traceSink *ecndelay.TraceJSONLSink
	var auditSink *ecndelay.AuditJSONLSink
	if *metricsFile != "" || *traceFile != "" || *probeFile != "" || *invariants ||
		*histFile != "" || *serveAddr != "" || *auditFile != "" {
		observer = &ecndelay.Observer{ProbeEvery: ecndelay.DurationFromSeconds(*probeEvery)}
		if *metricsFile != "" || *serveAddr != "" {
			observer.Metrics = ecndelay.NewMetricsRegistry()
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				log.Fatal(err)
			}
			traceSink = ecndelay.NewTraceJSONLSink(f)
			traceSink.WriteHeader(header("trace"))
			observer.Trace = ecndelay.NewTracer(traceSink)
		}
		if *probeFile != "" {
			observer.Probes = ecndelay.NewProbeSet()
			observer.Probes.SetHeader(header("probe"))
		}
		if *invariants {
			observer.Check = ecndelay.NewInvariantChecker()
		}
		if *histFile != "" || *serveAddr != "" || *auditFile != "" {
			// The audit trail feeds the feedback-latency histograms, so an
			// audited run always carries a histogram set.
			observer.Hists = ecndelay.NewHistSet()
		}
		if *auditFile != "" {
			f, err := os.Create(*auditFile)
			if err != nil {
				log.Fatal(err)
			}
			auditSink = ecndelay.NewAuditJSONLSink(f, 1<<16)
			auditSink.SetHeader(header("audit"))
			observer.Audit = ecndelay.NewAuditTrail(auditSink)
		}
	}

	bwBytes := *bw / 8
	nw := ecndelay.NewNetwork(*seed)
	if observer != nil {
		nw.SetObserver(observer)
	}
	var mark func() ecndelay.Marker
	if *proto == "dcqcn" {
		mark = func() ecndelay.Marker {
			return &ecndelay.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Ingress: *ingress, Rng: nw.Rng}
		}
	}
	// fab abstracts the wired topology down to what the flow/fault/output
	// machinery needs: who sends, who receives, which port is the
	// bottleneck the TSV tracks, and which switches exist (watchdog,
	// buffer-drop accounting). The default star build is unchanged, so
	// default invocations stay byte-identical.
	link := ecndelay.LinkConfig{Bandwidth: bwBytes, PropDelay: ecndelay.Microsecond}
	pfc := ecndelay.PFCConfig{PauseBytes: *pfcPause, ResumeBytes: *pfcResume}
	var fab fabric
	var closFab *ecndelay.Clos // set for -topology clos: carries the pod-aware shard map
	switch *topology {
	case "star":
		star := ecndelay.NewStar(nw, ecndelay.StarConfig{
			Senders:        *n,
			Link:           link,
			Mark:           mark,
			CtrlExtraDelay: ecndelay.DurationFromSeconds(*extraDelay),
			CtrlJitterMax:  ecndelay.DurationFromSeconds(*jitter),
			PFC:            pfc,
			SwitchQueueCap: *qcap,
		})
		fab = fabric{star.Senders, star.Receiver, star.Bottleneck,
			[]*ecndelay.Switch{star.Switch}}
	case "dumbbell":
		requireStarOnly(*topology, *extraDelay != 0, "-extra-delay")
		d := ecndelay.NewDumbbell(nw, ecndelay.DumbbellConfig{
			Senders: *n, Receivers: 1,
			Link:           link,
			Mark:           mark,
			CtrlJitterMax:  ecndelay.DurationFromSeconds(*jitter),
			PFC:            pfc,
			SwitchQueueCap: *qcap,
		})
		fab = fabric{d.Senders, d.Receivers[0], d.Bottleneck,
			[]*ecndelay.Switch{d.SW1, d.SW2}}
	case "parkinglot":
		requireStarOnly(*topology, *extraDelay != 0, "-extra-delay")
		requireStarOnly(*topology, *jitter != 0, "-jitter")
		requireStarOnly(*topology, *qcap != 0, "-qcap")
		if *n > *hops {
			log.Fatalf("-topology parkinglot has one sender per switch: -n %d needs -hops >= %d", *n, *n)
		}
		pl := ecndelay.NewParkingLot(nw, ecndelay.ParkingLotConfig{
			Hops: *hops, Link: link, Mark: mark, PFC: pfc,
		})
		// Every flow converges on the last switch's receiver, so the final
		// trunk is the shared bottleneck the long flow crosses end to end.
		fab = fabric{pl.Senders[:*n], pl.Recvs[*hops-1],
			pl.Trunks[len(pl.Trunks)-1], pl.Switches}
	case "clos":
		requireStarOnly(*topology, *extraDelay != 0, "-extra-delay")
		requireStarOnly(*topology, *jitter != 0, "-jitter")
		cl, err := ecndelay.NewClos(nw, ecndelay.ClosConfig{
			Radix: *radix, Tiers: *tiers, Oversub: *oversub,
			HostLink:       link,
			Mark:           mark,
			PFC:            pfc,
			SwitchQueueCap: *qcap,
			ECMPSeed:       *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		last := len(cl.Hosts) - 1
		if *n >= len(cl.Hosts) {
			log.Fatalf("-topology clos (radix %d, tiers %d) has %d hosts; -n %d leaves no receiver",
				*radix, *tiers, len(cl.Hosts), *n)
		}
		// Senders are the first n hosts, the aggregator is the last host —
		// in another pod, so the incast crosses the ECMP core — and its
		// leaf→host port is the bottleneck the TSV tracks.
		fab = fabric{cl.Hosts[:*n], cl.Hosts[last], cl.HostPorts[last], cl.Switches()}
		closFab = cl
	default:
		log.Fatalf("unknown -topology %q", *topology)
	}

	var startRates []float64
	if *rates != "" {
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				log.Fatalf("bad -rates: %v", err)
			}
			startRates = append(startRates, v)
		}
		if len(startRates) != *n {
			log.Fatalf("-rates has %d entries, -n is %d", len(startRates), *n)
		}
	}

	// Equilibrium warm start (internal/hybrid): solve the analytic fixed
	// point for this operating point and hand it to the endpoints and the
	// bottleneck queue below. Go-back-N recovery tracks sequence state the
	// prefilled segments would bypass, so the two are mutually exclusive.
	var warm *ecndelay.HybridWarmStart
	if *warmStart {
		if *recovery {
			log.Fatal("-warm-start is incompatible with -recovery (prefilled segments bypass go-back-N tracking)")
		}
		if startRates != nil {
			log.Fatal("-warm-start and -rates both set start rates; pick one")
		}
		switch *proto {
		case "dcqcn":
			pr := ecndelay.DefaultDCQCNParams(*n)
			pr.C = bwBytes / ecndelay.DataMTU
			w, err := ecndelay.SolveDCQCNWarmStart(pr)
			if err != nil {
				log.Fatal(err)
			}
			// The analytic fixed point assumes the extended RED ramp;
			// the packet marker cliffs to p=1 above Kmax, so a q* past
			// Kmax prefills above the packet equilibrium and the run
			// drains through a transient instead of skipping it.
			if w.FP.Q > pr.Kmax {
				log.Printf("warm-start: analytic q* (%.0f packets) exceeds RED Kmax (%.0f); "+
					"this operating point is outside the validated ramp — "+
					"expect a draining transient (try a higher -bw, e.g. 40e9)",
					w.FP.Q, pr.Kmax)
			}
			warm = w
		case "patched":
			cfg := ecndelay.DefaultPatchedTimelyFluidConfig(*n)
			w, err := ecndelay.SolveTimelyWarmStart(*n, cfg.Delta, cfg.Beta, bwBytes, cfg.TLow, 0)
			if err != nil {
				log.Fatal(err)
			}
			warm = w
		default:
			log.Fatalf("-warm-start supports -proto dcqcn or patched, not %q", *proto)
		}
	}

	rate := make([]func() float64, *n)
	retx := make([]func() int64, *n)
	// Protocol-specific probe signals (DCQCN α, TIMELY RTT), registered
	// alongside the queue and rate probes when -probe is set.
	type probeSignal struct {
		name string
		fn   func() float64
	}
	var auxProbes []probeSignal
	switch *proto {
	case "dcqcn":
		p := ecndelay.DefaultDCQCNProtoParams()
		p.Recovery = *recovery
		p.RTO = ecndelay.DurationFromSeconds(*rto)
		if _, err := ecndelay.NewDCQCNEndpoint(fab.receiver, p); err != nil {
			log.Fatal(err)
		}
		var senders []*ecndelay.DCQCNSender
		for i, h := range fab.senders {
			ep, err := ecndelay.NewDCQCNEndpoint(h, p)
			if err != nil {
				log.Fatal(err)
			}
			s, err := ep.NewFlow(i, fab.receiver.ID(), -1, 0)
			if err != nil {
				log.Fatal(err)
			}
			rate[i] = s.Rate
			retx[i] = func() int64 { return s.Recovery().RetxBytes }
			auxProbes = append(auxProbes, probeSignal{fmt.Sprintf("alpha%d", i), s.Alpha})
			senders = append(senders, s)
		}
		if warm != nil {
			if err := warm.ApplyDCQCN(senders); err != nil {
				log.Fatal(err)
			}
		}
	case "timely", "patched":
		p := ecndelay.DefaultTimelyProtoParams()
		if *proto == "patched" {
			p = ecndelay.DefaultPatchedTimelyProtoParams()
		}
		p.Burst = *burst
		if *seg > 0 {
			p.Seg = *seg
		}
		p.Recovery = *recovery
		p.RTO = ecndelay.DurationFromSeconds(*rto)
		if _, err := ecndelay.NewTimelyEndpoint(fab.receiver, p); err != nil {
			log.Fatal(err)
		}
		for i, h := range fab.senders {
			ep, err := ecndelay.NewTimelyEndpoint(h, p)
			if err != nil {
				log.Fatal(err)
			}
			sr := 0.0
			if startRates != nil {
				sr = startRates[i]
			}
			if warm != nil {
				sr = warm.RatesBytes[i]
			}
			s, err := ep.NewFlow(i, fab.receiver.ID(), -1, 0, sr)
			if err != nil {
				log.Fatal(err)
			}
			rate[i] = s.Rate
			retx[i] = func() int64 { return s.Recovery().RetxBytes }
			auxProbes = append(auxProbes, probeSignal{fmt.Sprintf("rtt_s%d", i),
				func() float64 { return s.RTT().Seconds() }})
		}
	default:
		log.Fatalf("unknown -proto %q", *proto)
	}

	// Assemble the fault plan: data loss and flaps on the bottleneck,
	// control loss on the receiver's NIC (where acks/NACKs/CNPs originate).
	plan := &ecndelay.FaultPlan{Seed: *faultSeed}
	bn := ecndelay.LinkFaults{Port: fab.bottleneck}
	if *lossRate > 0 {
		bn.Loss = append(bn.Loss, ecndelay.Loss{Kinds: ecndelay.SelData, Rate: *lossRate})
	}
	if *flapSpec != "" {
		parts := strings.Split(*flapSpec, ",")
		if len(parts) != 2 {
			log.Fatalf("bad -flap %q, want down,up seconds", *flapSpec)
		}
		down, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		up, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			log.Fatalf("bad -flap %q: %v %v", *flapSpec, err1, err2)
		}
		bn.Flaps = append(bn.Flaps, ecndelay.Flap{
			DownAt: ecndelay.Time(ecndelay.DurationFromSeconds(down)),
			UpAt:   ecndelay.Time(ecndelay.DurationFromSeconds(up)),
		})
	}
	if len(bn.Loss)+len(bn.Flaps) > 0 {
		plan.Links = append(plan.Links, bn)
	}
	if *ctrlLoss > 0 {
		plan.Links = append(plan.Links, ecndelay.LinkFaults{
			Port: fab.receiver.Port(),
			Loss: []ecndelay.Loss{{Kinds: ecndelay.SelCtrl, Rate: *ctrlLoss}},
		})
	}
	var applied *ecndelay.AppliedFaults
	if len(plan.Links) > 0 {
		applied = plan.Apply(nw)
	}
	var wd *ecndelay.PFCWatchdog
	if *pfcWatch > 0 {
		wd = ecndelay.NewPFCWatchdog(nw, ecndelay.DurationFromSeconds(*pfcWatch))
		for _, sw := range fab.switches {
			wd.WatchSwitch(sw)
		}
		for _, h := range fab.senders {
			wd.WatchHost(h)
		}
		wd.WatchHost(fab.receiver)
	}

	if observer != nil && observer.Probes != nil {
		every := observer.ProbeCadence()
		q := fab.bottleneck.Queue()
		observer.Probes.NewProbe("queue_bytes", 0).Drive(nw.Sim, every, func() float64 {
			return float64(q.Bytes())
		})
		for i := 0; i < *n; i++ {
			fn := rate[i]
			observer.Probes.NewProbe(fmt.Sprintf("rate%d", i), 0).Drive(nw.Sim, every, fn)
		}
		for _, ap := range auxProbes {
			observer.Probes.NewProbe(ap.name, 0).Drive(nw.Sim, every, ap.fn)
		}
	}

	// Live telemetry: the HTTP goroutine never touches the simulator —
	// /progress reads an atomic snapshot of the sim clock refreshed from
	// inside the sampling tick, and /metrics reads only atomic counters
	// and histograms — so a served run is bit-identical to an unserved one.
	var simNow atomic.Uint64 // float64 bits of the sim clock
	if *serveAddr != "" {
		srv := ecndelay.NewTelemetryServer(observer)
		srv.SetProgress(func() any {
			t := math.Float64frombits(simNow.Load())
			pct := 0.0
			if *horizon > 0 {
				pct = 100 * t / *horizon
			}
			return map[string]any{"sim_time_s": t, "horizon_s": *horizon, "pct": pct}
		})
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown(2 * time.Second)
		shutdownOnSignal(srv)
		log.Printf("serving telemetry on http://%s", addr)
	}

	// Warm-start the bottleneck queue and attach the optional fluid
	// background aggregate before any partitioning: the prefilled segments
	// are ordinary queued packets, and the aggregate's coupling tick only
	// runs on the serial engine.
	if warm != nil {
		flows := make([]ecndelay.HybridPrefillFlow, *n)
		for i, h := range fab.senders {
			flows[i] = ecndelay.HybridPrefillFlow{Flow: i, Src: h.ID(), Dst: fab.receiver.ID()}
		}
		warm.Prefill(fab.bottleneck, flows)
	}
	var bg *ecndelay.HybridBackgroundAggregate
	if *bgFlows > 0 {
		if *proto != "dcqcn" {
			log.Fatal("-bg-flows needs -proto dcqcn (the aggregate is a DCQCN fluid model)")
		}
		if *shards > 1 {
			log.Fatal("-bg-flows runs serial only: the coupling tick is not sharded")
		}
		pr := ecndelay.DefaultDCQCNParams(*bgFlows)
		pr.C = bwBytes / ecndelay.DataMTU
		b, err := ecndelay.AttachFluidBackground(fab.bottleneck, ecndelay.HybridBackgroundConfig{
			Flows: *bgFlows, Par: pr, ColdStart: warm == nil,
		})
		if err != nil {
			log.Fatal(err)
		}
		bg = b
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	// Sharding: partition last, after faults and watchdogs have attached,
	// so every RNG-drawing port is visible to the assignment's pinning
	// pass. The extra header comment appears only in sharded runs — a
	// -shards 1 invocation stays byte-identical to the serial engine (the
	// determinism gate relies on it).
	if *shards > 1 {
		if *shards > nw.NodeCount() {
			log.Fatalf("-shards %d exceeds the network's %d nodes", *shards, nw.NodeCount())
		}
		assign := ecndelay.DefaultShardAssign(nw, *shards)
		if closFab != nil && mark == nil && applied == nil {
			// Marker-free Clos with no fault RNG: cut along pod
			// boundaries so only thin core links cross shards.
			assign = closFab.ShardAssign(*shards)
		}
		if err := nw.PartitionByNode(assign); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "# shards: %d effective (%d requested), partition sizes:", nw.Shards(), *shards)
		for _, sz := range nw.ShardSizes() {
			fmt.Fprintf(out, " %d", sz)
		}
		fmt.Fprintln(out)
	}

	qBytes := func() int { return fab.bottleneck.Queue().Bytes() }
	if bg != nil {
		// With a background aggregate the marking view (real + fluid
		// bytes) is the trajectory of interest; the extra comment keeps
		// aggregate-free runs byte-identical.
		fmt.Fprintf(out, "# bg-flows: %d fluid background flows; q_bytes is the combined marking view\n", *bgFlows)
		qBytes = func() int { return fab.bottleneck.Queue().MarkBytes() }
	}
	fmt.Fprint(out, "# t\tq_bytes")
	for i := 0; i < *n; i++ {
		fmt.Fprintf(out, "\trate%d", i)
	}
	fmt.Fprintln(out)
	nw.Sim.Every(0, ecndelay.DurationFromSeconds(*sample), func() {
		simNow.Store(math.Float64bits(nw.Sim.Now().Seconds()))
		fmt.Fprintf(out, "%.6f\t%d", nw.Sim.Now().Seconds(), qBytes())
		for i := 0; i < *n; i++ {
			fmt.Fprintf(out, "\t%.6g", rate[i]())
		}
		fmt.Fprintln(out)
	})
	nw.RunUntil(ecndelay.Time(ecndelay.DurationFromSeconds(*horizon)))

	// A trailing comment block carries the fault/degradation summary, so
	// piping the TSV elsewhere still works and a determinism check can
	// diff the whole output byte for byte.
	if applied != nil || wd != nil || *qcap > 0 || *recovery {
		var retxSum int64
		for i := 0; i < *n; i++ {
			retxSum += retx[i]()
		}
		var bufDrops int64
		for _, sw := range fab.switches {
			for _, p := range sw.Ports() {
				bufDrops += p.Queue().Drops()
			}
		}
		wireDrops := fab.bottleneck.WireDrops() + fab.receiver.Port().WireDrops()
		fmt.Fprintf(out, "# faults: injected_drops=%d wire_drops=%d buffer_drops=%d retx_bytes=%d",
			injectedDrops(applied), wireDrops, bufDrops, retxSum)
		if wd != nil {
			wd.Finish()
			deadlocked := 0
			for _, e := range wd.Events() {
				if e.OpenAtFinish {
					deadlocked++
				}
			}
			fmt.Fprintf(out, " pause_storms=%d open_at_finish=%d paused_s=%.6f",
				wd.Storms(), deadlocked, float64(wd.PausedTotal())/1e9)
		}
		fmt.Fprintln(out)
	}
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
	if observer != nil {
		out.Flush() // log.Fatal below skips the deferred flush
		if traceSink != nil {
			if err := traceSink.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if auditSink != nil {
			if err := auditSink.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if *metricsFile != "" {
			if err := writeFileWith(*metricsFile, observer.Metrics.WriteTSV); err != nil {
				log.Fatal(err)
			}
		}
		if *probeFile != "" {
			if err := writeFileWith(*probeFile, observer.Probes.WriteJSONL); err != nil {
				log.Fatal(err)
			}
		}
		if *histFile != "" {
			if err := writeFileWith(*histFile, histWriter(observer.Hists, *histFile)); err != nil {
				log.Fatal(err)
			}
		}
		if c := observer.Check; c != nil {
			c.Finish(nw.Sim.Now())
			if c.Total() > 0 {
				for _, v := range c.Violations() {
					fmt.Fprintln(os.Stderr, "packetsim: invariant violation:", v)
				}
				log.Fatalf("%d invariant violation(s)", c.Total())
			}
		}
	}
}

// fabric is the topology-independent view the rest of main drives: long
// flows go senders → receiver, the bottleneck port's queue is the TSV
// series, and switches carry the watchdog and drop accounting.
type fabric struct {
	senders    []*ecndelay.Host
	receiver   *ecndelay.Host
	bottleneck *ecndelay.Port
	switches   []*ecndelay.Switch
}

// requireStarOnly rejects flags the selected topology's builder has no hook
// for, instead of silently ignoring them.
func requireStarOnly(topology string, set bool, flagName string) {
	if set {
		log.Fatalf("%s is not supported with -topology %s", flagName, topology)
	}
}

// histWriter picks the histogram export format from the target filename:
// TSV for .tsv, JSONL (the cmd/obsreport input format) otherwise.
func histWriter(hs *ecndelay.HistSet, path string) func(io.Writer) error {
	if strings.HasSuffix(path, ".tsv") {
		return hs.WriteTSV
	}
	return hs.WriteJSONL
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func injectedDrops(a *ecndelay.AppliedFaults) int64 {
	if a == nil {
		return 0
	}
	return a.Drops()
}
