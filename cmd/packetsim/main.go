// Command packetsim runs long-lived flows through the packet-level
// simulator and writes the bottleneck queue and per-flow rate series as
// TSV.
//
//	packetsim -proto dcqcn -n 10 -bw 40e9 -extra-delay 85e-6
//	packetsim -proto timely -n 2 -rates 875e6,375e6
//	packetsim -proto patched -n 2 -burst
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ecndelay"
	"ecndelay/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("packetsim: ")
	var (
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		proto      = flag.String("proto", "dcqcn", "dcqcn | timely | patched")
		n          = flag.Int("n", 2, "number of senders (one long flow each)")
		bw         = flag.Float64("bw", 10e9, "link bandwidth, bits/s")
		extraDelay = flag.Float64("extra-delay", 0, "extra feedback delay, seconds")
		jitter     = flag.Float64("jitter", 0, "uniform feedback jitter bound, seconds")
		ingress    = flag.Bool("ingress", false, "mark ECN at ingress instead of egress (DCQCN)")
		burst      = flag.Bool("burst", false, "TIMELY per-burst pacing")
		seg        = flag.Int("seg", 0, "TIMELY segment bytes (0: default 16000)")
		horizon    = flag.Float64("horizon", 0.1, "simulated seconds")
		sample     = flag.Float64("sample", 1e-4, "output sampling interval, seconds")
		rates      = flag.String("rates", "", "comma-separated TIMELY start rates, bytes/s")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	bwBytes := *bw / 8
	nw := ecndelay.NewNetwork(*seed)
	var mark func() ecndelay.Marker
	if *proto == "dcqcn" {
		mark = func() ecndelay.Marker {
			return &ecndelay.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Ingress: *ingress, Rng: nw.Rng}
		}
	}
	star := ecndelay.NewStar(nw, ecndelay.StarConfig{
		Senders:        *n,
		Link:           ecndelay.LinkConfig{Bandwidth: bwBytes, PropDelay: ecndelay.Microsecond},
		Mark:           mark,
		CtrlExtraDelay: ecndelay.DurationFromSeconds(*extraDelay),
		CtrlJitterMax:  ecndelay.DurationFromSeconds(*jitter),
	})

	var startRates []float64
	if *rates != "" {
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				log.Fatalf("bad -rates: %v", err)
			}
			startRates = append(startRates, v)
		}
		if len(startRates) != *n {
			log.Fatalf("-rates has %d entries, -n is %d", len(startRates), *n)
		}
	}

	rate := make([]func() float64, *n)
	switch *proto {
	case "dcqcn":
		if _, err := ecndelay.NewDCQCNEndpoint(star.Receiver, ecndelay.DefaultDCQCNProtoParams()); err != nil {
			log.Fatal(err)
		}
		for i, h := range star.Senders {
			ep, err := ecndelay.NewDCQCNEndpoint(h, ecndelay.DefaultDCQCNProtoParams())
			if err != nil {
				log.Fatal(err)
			}
			s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0)
			if err != nil {
				log.Fatal(err)
			}
			rate[i] = s.Rate
		}
	case "timely", "patched":
		p := ecndelay.DefaultTimelyProtoParams()
		if *proto == "patched" {
			p = ecndelay.DefaultPatchedTimelyProtoParams()
		}
		p.Burst = *burst
		if *seg > 0 {
			p.Seg = *seg
		}
		if _, err := ecndelay.NewTimelyEndpoint(star.Receiver, p); err != nil {
			log.Fatal(err)
		}
		for i, h := range star.Senders {
			ep, err := ecndelay.NewTimelyEndpoint(h, p)
			if err != nil {
				log.Fatal(err)
			}
			sr := 0.0
			if startRates != nil {
				sr = startRates[i]
			}
			s, err := ep.NewFlow(i, star.Receiver.ID(), -1, 0, sr)
			if err != nil {
				log.Fatal(err)
			}
			rate[i] = s.Rate
		}
	default:
		log.Fatalf("unknown -proto %q", *proto)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprint(out, "# t\tq_bytes")
	for i := 0; i < *n; i++ {
		fmt.Fprintf(out, "\trate%d", i)
	}
	fmt.Fprintln(out)
	nw.Sim.Every(0, ecndelay.DurationFromSeconds(*sample), func() {
		fmt.Fprintf(out, "%.6f\t%d", nw.Sim.Now().Seconds(), star.Bottleneck.Queue().Bytes())
		for i := 0; i < *n; i++ {
			fmt.Fprintf(out, "\t%.6g", rate[i]())
		}
		fmt.Fprintln(out)
	})
	nw.Sim.RunUntil(ecndelay.Time(ecndelay.DurationFromSeconds(*horizon)))
	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
}
