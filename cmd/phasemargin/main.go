// Command phasemargin sweeps the Bode phase margin of the linearised
// DCQCN or patched TIMELY loop over flow counts and feedback delays,
// producing the raw numbers behind Figures 3 and 11 as TSV. The grid
// is fanned out over -workers goroutines through the sweep engine; the
// output is identical to a serial run regardless of worker count.
//
//	phasemargin -model dcqcn -flows 1:64 -delays 1e-6,25e-6,50e-6,85e-6,100e-6
//	phasemargin -model patched -flows 2:64 -workers 8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phasemargin: ")
	var (
		model   = flag.String("model", "dcqcn", "dcqcn | patched")
		flows   = flag.String("flows", "1:64", "N range lo:hi or comma list")
		delays  = flag.String("delays", "1e-6,25e-6,50e-6,85e-6,100e-6", "DCQCN τ* values, seconds")
		rai     = flag.Float64("rai", 0, "DCQCN R_AI override, bits/s (0: default 40e6)")
		kmax    = flag.Float64("kmax", 0, "DCQCN K_max override, KB (0: default 200)")
		workers = flag.Int("workers", 0, "parallel workers (0: GOMAXPROCS)")
	)
	flag.Parse()

	ns, err := parseInts(*flows)
	if err != nil {
		log.Fatalf("bad -flows: %v", err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	switch *model {
	case "dcqcn":
		var ds []float64
		for _, s := range strings.Split(*delays, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				log.Fatalf("bad -delays: %v", err)
			}
			ds = append(ds, v)
		}
		results, err := runGrid(dcqcnJobs(ns, ds, *rai, *kmax), *workers)
		if err != nil {
			log.Fatal(err)
		}
		if err := renderDCQCN(out, ns, ds, results); err != nil {
			log.Fatal(err)
		}
	case "patched":
		results, err := runGrid(patchedJobs(ns), *workers)
		if err != nil {
			log.Fatal(err)
		}
		renderPatched(out, ns, results)
	default:
		log.Fatalf("unknown -model %q", *model)
	}
}

// renderDCQCN writes the Figure 3 grid as TSV from row-major results.
// Any failed cell aborts the table: a margin that cannot be computed on
// this grid is an input error, not a data point.
func renderDCQCN(out io.Writer, ns []int, ds []float64, results []ecndelay.SweepResult) error {
	fmt.Fprint(out, "# N")
	for _, d := range ds {
		fmt.Fprintf(out, "\tpm_%.0fus", d*1e6)
	}
	fmt.Fprintln(out)
	for i, n := range ns {
		fmt.Fprintf(out, "%d", n)
		for j := range ds {
			r := results[i*len(ds)+j]
			if r.Err != "" {
				return fmt.Errorf("%s", r.Err)
			}
			fmt.Fprintf(out, "\t%.2f", r.Metrics["pm_deg"])
		}
		fmt.Fprintln(out)
	}
	return nil
}

// renderPatched writes the Figure 11 table; a failed row (typically no
// fixed point at that N) renders inline, as the serial version did.
func renderPatched(out io.Writer, ns []int, results []ecndelay.SweepResult) {
	fmt.Fprintln(out, "# N\tq_star_kb\tpm_deg\tstable")
	for i, n := range ns {
		r := results[i]
		if r.Err != "" {
			fmt.Fprintf(out, "%d\t-\t-\t%s\n", n, r.Err)
			continue
		}
		fmt.Fprintf(out, "%d\t%.1f\t%.2f\t%v\n",
			n, r.Metrics["q_star_kb"], r.Metrics["pm_deg"], r.Metrics["stable"] > 0)
	}
}

// runGrid fans the jobs out and returns results in job order.
func runGrid(jobs []ecndelay.SweepJob, workers int) ([]ecndelay.SweepResult, error) {
	sink := &ecndelay.SweepMemorySink{}
	if _, err := ecndelay.RunSweep(ecndelay.SweepConfig{Workers: workers}, jobs, sink); err != nil {
		return nil, err
	}
	return sink.Results(), nil
}

// dcqcnJobs builds one job per (N, τ*) cell, in row-major order.
func dcqcnJobs(ns []int, ds []float64, rai, kmax float64) []ecndelay.SweepJob {
	var jobs []ecndelay.SweepJob
	for _, n := range ns {
		for _, d := range ds {
			n, d := n, d
			jobs = append(jobs, ecndelay.SweepJob{
				ID: fmt.Sprintf("dcqcn/n%d/d%g", n, d),
				Run: func(int64) (map[string]float64, error) {
					p := ecndelay.DefaultDCQCNParams(n)
					p.TauStar = d
					if rai > 0 {
						p.RAI = rai / 8 / 1000
					}
					if kmax > 0 {
						p.Kmax = kmax
					}
					loop, err := ecndelay.NewDCQCNLoop(p)
					if err != nil {
						return nil, err
					}
					res, err := ecndelay.PhaseMargin(loop)
					if err != nil {
						return nil, err
					}
					return map[string]float64{"pm_deg": res.PhaseMarginDeg}, nil
				},
			})
		}
	}
	return jobs
}

// patchedJobs builds one job per flow count. A loop-construction error
// (no fixed point) is a row value, not a sweep failure.
func patchedJobs(ns []int) []ecndelay.SweepJob {
	var jobs []ecndelay.SweepJob
	for _, n := range ns {
		n := n
		jobs = append(jobs, ecndelay.SweepJob{
			ID: fmt.Sprintf("patched/n%d", n),
			Run: func(int64) (map[string]float64, error) {
				cfg := ecndelay.DefaultPatchedTimelyFluidConfig(n)
				loop, err := ecndelay.NewPatchedTimelyLoop(cfg)
				if err != nil {
					return nil, err
				}
				res, err := ecndelay.PhaseMargin(loop)
				if err != nil {
					return nil, err
				}
				sys, err := ecndelay.NewPatchedTimelyFluid(cfg)
				if err != nil {
					return nil, err
				}
				stable := 0.0
				if res.Stable {
					stable = 1
				}
				return map[string]float64{
					"pm_deg":    res.PhaseMarginDeg,
					"q_star_kb": sys.FixedPointQueue() / 1000,
					"stable":    stable,
				}, nil
			},
		})
	}
	return jobs
}

// parseInts accepts "lo:hi" (inclusive range) or a comma list.
func parseInts(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, err
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, err
		}
		if a > b {
			return nil, fmt.Errorf("range %d:%d is backwards", a, b)
		}
		var out []int
		for i := a; i <= b; i++ {
			out = append(out, i)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
