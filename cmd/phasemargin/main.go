// Command phasemargin sweeps the Bode phase margin of the linearised
// DCQCN or patched TIMELY loop over flow counts and feedback delays,
// producing the raw numbers behind Figures 3 and 11 as TSV.
//
//	phasemargin -model dcqcn -flows 1:64 -delays 1e-6,25e-6,50e-6,85e-6,100e-6
//	phasemargin -model patched -flows 2:64
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ecndelay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phasemargin: ")
	var (
		model  = flag.String("model", "dcqcn", "dcqcn | patched")
		flows  = flag.String("flows", "1:64", "N range lo:hi or comma list")
		delays = flag.String("delays", "1e-6,25e-6,50e-6,85e-6,100e-6", "DCQCN τ* values, seconds")
		rai    = flag.Float64("rai", 0, "DCQCN R_AI override, bits/s (0: default 40e6)")
		kmax   = flag.Float64("kmax", 0, "DCQCN K_max override, KB (0: default 200)")
	)
	flag.Parse()

	ns, err := parseInts(*flows)
	if err != nil {
		log.Fatalf("bad -flows: %v", err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	switch *model {
	case "dcqcn":
		var ds []float64
		for _, s := range strings.Split(*delays, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				log.Fatalf("bad -delays: %v", err)
			}
			ds = append(ds, v)
		}
		fmt.Fprint(out, "# N")
		for _, d := range ds {
			fmt.Fprintf(out, "\tpm_%.0fus", d*1e6)
		}
		fmt.Fprintln(out)
		for _, n := range ns {
			fmt.Fprintf(out, "%d", n)
			for _, d := range ds {
				p := ecndelay.DefaultDCQCNParams(n)
				p.TauStar = d
				if *rai > 0 {
					p.RAI = *rai / 8 / 1000
				}
				if *kmax > 0 {
					p.Kmax = *kmax
				}
				loop, err := ecndelay.NewDCQCNLoop(p)
				if err != nil {
					log.Fatal(err)
				}
				res, err := ecndelay.PhaseMargin(loop)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(out, "\t%.2f", res.PhaseMarginDeg)
			}
			fmt.Fprintln(out)
		}
	case "patched":
		fmt.Fprintln(out, "# N\tq_star_kb\tpm_deg\tstable")
		for _, n := range ns {
			cfg := ecndelay.DefaultPatchedTimelyFluidConfig(n)
			loop, err := ecndelay.NewPatchedTimelyLoop(cfg)
			if err != nil {
				fmt.Fprintf(out, "%d\t-\t-\t%v\n", n, err)
				continue
			}
			res, err := ecndelay.PhaseMargin(loop)
			if err != nil {
				log.Fatal(err)
			}
			sys, err := ecndelay.NewPatchedTimelyFluid(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(out, "%d\t%.1f\t%.2f\t%v\n",
				n, sys.FixedPointQueue()/1000, res.PhaseMarginDeg, res.Stable)
		}
	default:
		log.Fatalf("unknown -model %q", *model)
	}
}

// parseInts accepts "lo:hi" (inclusive range) or a comma list.
func parseInts(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, err
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, err
		}
		if a > b {
			return nil, fmt.Errorf("range %d:%d is backwards", a, b)
		}
		var out []int
		for i := a; i <= b; i++ {
			out = append(out, i)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
