package main

import "testing"

func TestParseIntsRange(t *testing.T) {
	got, err := parseInts("3:6")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseIntsList(t *testing.T) {
	got, err := parseInts("1, 8,64")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 8 || got[2] != 64 {
		t.Fatalf("got %v", got)
	}
}

func TestParseIntsErrors(t *testing.T) {
	for _, bad := range []string{"6:3", "a:b", "1,x", ""} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}
