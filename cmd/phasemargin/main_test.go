package main

import (
	"strings"
	"testing"
)

func TestParseIntsRange(t *testing.T) {
	got, err := parseInts("3:6")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseIntsList(t *testing.T) {
	got, err := parseInts("1, 8,64")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 8 || got[2] != 64 {
		t.Fatalf("got %v", got)
	}
}

func TestParseIntsErrors(t *testing.T) {
	for _, bad := range []string{"6:3", "a:b", "1,x", ""} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

// The rendered TSV must be byte-identical whether the grid runs on one
// worker or several.
func TestParallelGridMatchesSerial(t *testing.T) {
	ns := []int{1, 2, 8, 10, 64}
	ds := []float64{1e-6, 85e-6}

	render := func(workers int) string {
		var sb strings.Builder
		results, err := runGrid(dcqcnJobs(ns, ds, 0, 0), workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := renderDCQCN(&sb, ns, ds, results); err != nil {
			t.Fatal(err)
		}
		presults, err := runGrid(patchedJobs([]int{2, 10, 64}), workers)
		if err != nil {
			t.Fatal(err)
		}
		renderPatched(&sb, []int{2, 10, 64}, presults)
		return sb.String()
	}
	serial := render(1)
	if !strings.Contains(serial, "# N\tpm_1us\tpm_85us") {
		t.Fatalf("unexpected header:\n%s", serial)
	}
	if parallel := render(4); parallel != serial {
		t.Errorf("parallel TSV differs from serial:\n%s\nvs\n%s", parallel, serial)
	}
}
