// Command ccreport analyses a control-loop audit JSONL export (packetsim
// -audit, sweep -audit, or an AuditJSONLSink written directly): it
// reconstructs per-flow rate timelines, checks that every DCQCN rate cut
// is attributed to the mark episode that caused it, summarises the
// feedback-latency legs, detects oscillation episodes (amplitude and
// period of the sending rate, and of the queue when a probe export is
// given), and — when asked — compares the measured oscillation period
// and feedback delay against the fluid-model prediction at the same
// operating point.
//
//	ccreport -audit audit.jsonl
//	ccreport -audit audit.jsonl -probe probes.jsonl -rates rates.jsonl
//	ccreport -audit audit.jsonl -fluid-n 10 -fluid-bw 5e9 -fluid-kmin 50000
//	ccreport -audit audit.jsonl -require-attributed   # CI gate
//
// Exit status: 0 on success, 1 when -require-attributed finds an
// unattributed rate cut, 2 on bad usage or unreadable input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"ecndelay"
	"ecndelay/internal/stats"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// rec is one audit JSONL record (the header line and foreign records are
// skipped by Dec == "").
type rec struct {
	TNs    int64   `json:"t_ns"`
	Dec    string  `json:"dec"`
	Node   int32   `json:"node"`
	Peer   int32   `json:"peer"`
	Flow   int32   `json:"flow"`
	Seq    uint64  `json:"seq"`
	Ep     uint64  `json:"ep"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Tgt    float64 `json:"tgt"`
	Alpha  float64 `json:"alpha"`
	RTT    float64 `json:"rtt"`
	Grad   float64 `json:"grad"`
	QBytes int64   `json:"qbytes"`
}

// header is the self-describing first record of an export.
type header struct {
	Schema string `json:"schema"`
	V      int    `json:"v"`
	Seed   int64  `json:"seed"`
	Proto  string `json:"proto"`
	Flags  string `json:"flags"`
}

// rateDecs are the decision types that change a sender's rate; their
// New field is the post-decision rate.
var rateDecs = map[string]bool{
	"cut": true, "fr": true, "ai": true, "hai": true,
	"tadd": true, "tmd": true, "tbrake": true, "tpatched": true,
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	auditPath := fs.String("audit", "", "audit JSONL export to analyse (required)")
	probePath := fs.String("probe", "", "probe JSONL export; queue_bytes series feed the queue oscillation analysis")
	ratesPath := fs.String("rates", "", "write per-flow rate-timeline JSONL here")
	requireAttr := fs.Bool("require-attributed", false, "exit 1 if any rate cut lacks a mark episode")
	fluidN := fs.Int("fluid-n", 0, "compare against the fluid model for this many flows (0: skip)")
	fluidBW := fs.Float64("fluid-bw", 5e9, "fluid model: bottleneck bandwidth, bytes/s")
	fluidDelay := fs.Float64("fluid-delay", 0, "fluid model: feedback delay τ* seconds (0: use measured p50 mark→cut)")
	fluidKmin := fs.Float64("fluid-kmin", 50000, "fluid model: RED Kmin, bytes")
	fluidKmax := fs.Float64("fluid-kmax", 200000, "fluid model: RED Kmax, bytes")
	fluidPmax := fs.Float64("fluid-pmax", 0.01, "fluid model: RED Pmax")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *auditPath == "" {
		fmt.Fprintln(stderr, "ccreport: -audit is required")
		fs.Usage()
		return 2
	}

	hdr, recs, err := readAudit(*auditPath)
	if err != nil {
		fmt.Fprintf(stderr, "ccreport: %v\n", err)
		return 2
	}
	if hdr != nil {
		fmt.Fprintf(stdout, "audit %s v%d seed=%d proto=%s", *auditPath, hdr.V, hdr.Seed, hdr.Proto)
		if hdr.Flags != "" {
			fmt.Fprintf(stdout, " flags=%q", hdr.Flags)
		}
		fmt.Fprintln(stdout)
	} else {
		fmt.Fprintf(stdout, "audit %s (no header)\n", *auditPath)
	}
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "ccreport: audit export holds no decision records")
		return 2
	}
	fmt.Fprintf(stdout, "%d decisions over %.6fs\n", len(recs),
		float64(recs[len(recs)-1].TNs-recs[0].TNs)/1e9)

	att := attribution(recs)
	fmt.Fprintf(stdout, "\nattribution: %d rate cuts, %d attributed, %d unattributed; %d mark episodes, %d orphaned\n",
		att.cuts, att.attributed, att.cuts-att.attributed, att.episodes, att.orphans)
	if len(att.markCut) > 0 {
		p50, _ := stats.Percentile(att.markCut, 50)
		p99, _ := stats.Percentile(att.markCut, 99)
		fmt.Fprintf(stdout, "mark→rate-cut latency: p50 %.1fµs p99 %.1fµs (%d attributed cuts)\n",
			p50*1e6, p99*1e6, len(att.markCut))
	}
	if len(att.openCut) > 0 {
		p50, _ := stats.Percentile(att.openCut, 50)
		p99, _ := stats.Percentile(att.openCut, 99)
		fmt.Fprintf(stdout, "episode-open→first-cut latency: p50 %.1fµs p99 %.1fµs (%d episodes with cuts)\n",
			p50*1e6, p99*1e6, len(att.openCut))
	}

	tls := timelines(recs)
	fmt.Fprintf(stdout, "\nrate timelines: %d flows\n", len(tls))
	var periods, amps []float64
	for _, tl := range tls {
		o := oscillation(tl.ts, tl.vs)
		fmt.Fprintf(stdout, "  n%d flow %d: %d rate changes, %.1f→%.1f Mb/s",
			tl.node, tl.flow, len(tl.vs), tl.vs[0]*8/1e6, tl.vs[len(tl.vs)-1]*8/1e6)
		if o.cycles >= 2 {
			fmt.Fprintf(stdout, "; oscillating: amplitude %.1f Mb/s, period %.1fµs over %d cycles",
				o.amp*8/1e6, o.period*1e6, o.cycles)
			periods = append(periods, o.period)
			amps = append(amps, o.amp)
		}
		fmt.Fprintln(stdout)
	}
	var ratePeriod float64
	if len(periods) > 0 {
		ratePeriod = mean(periods)
		fmt.Fprintf(stdout, "rate oscillation: mean period %.1fµs, mean amplitude %.1f Mb/s across %d oscillating flows\n",
			ratePeriod*1e6, mean(amps)*8/1e6, len(periods))
	}

	var queuePeriod float64
	if *probePath != "" {
		qts, qvs, name, err := readQueueProbe(*probePath)
		if err != nil {
			fmt.Fprintf(stderr, "ccreport: %v\n", err)
			return 2
		}
		if len(qts) > 0 {
			o := oscillation(qts, qvs)
			fmt.Fprintf(stdout, "\nqueue series %q: %d samples", name, len(qts))
			if o.cycles >= 2 {
				queuePeriod = o.period
				fmt.Fprintf(stdout, "; oscillating: amplitude %.1f KB, period %.1fµs over %d cycles",
					o.amp/1e3, o.period*1e6, o.cycles)
			}
			fmt.Fprintln(stdout)
		}
	}

	if *fluidN > 0 {
		delay := *fluidDelay
		if delay == 0 && len(att.markCut) > 0 {
			delay, _ = stats.Percentile(att.markCut, 50)
		}
		if err := fluidCompare(stdout, *fluidN, *fluidBW, delay, *fluidKmin, *fluidKmax, *fluidPmax, ratePeriod, queuePeriod); err != nil {
			fmt.Fprintf(stderr, "ccreport: fluid comparison: %v\n", err)
			return 2
		}
	}

	if *ratesPath != "" {
		if err := writeRates(*ratesPath, tls); err != nil {
			fmt.Fprintf(stderr, "ccreport: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "\nwrote %d rate timelines to %s\n", len(tls), *ratesPath)
	}

	if *requireAttr && att.attributed != att.cuts {
		fmt.Fprintf(stderr, "ccreport: %d of %d rate cuts unattributed\n", att.cuts-att.attributed, att.cuts)
		return 1
	}
	return 0
}

// readAudit parses an audit JSONL export, returning its header (nil when
// absent) and the decision records in file order.
func readAudit(path string) (*header, []rec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var hdr *header
	var recs []rec
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h header
			if err := json.Unmarshal(line, &h); err == nil && h.Schema != "" {
				hdr = &h
				continue
			}
		}
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, nil, fmt.Errorf("%s: bad record: %v", path, err)
		}
		if r.Dec == "" {
			continue // header or foreign record
		}
		recs = append(recs, r)
	}
	return hdr, recs, sc.Err()
}

type attStats struct {
	cuts, attributed  int
	episodes, orphans int
	markCut           []float64 // per-cut mark→cut latency, seconds
	openCut           []float64 // per-episode open→first-cut latency, seconds
}

// attribution reconstructs the mark-episode bookkeeping: every cut
// should name the episode stamped on its CNP; an opened episode no cut
// ever names is an orphan (its feedback was lost).
func attribution(recs []rec) attStats {
	var st attStats
	openT := make(map[uint64]int64)
	cutBy := make(map[uint64]int)
	for _, r := range recs {
		switch r.Dec {
		case "epopen":
			st.episodes++
			openT[r.Ep] = r.TNs
		case "cut":
			st.cuts++
			if r.Ep != 0 {
				st.attributed++
				cutBy[r.Ep]++
				st.markCut = append(st.markCut, r.RTT)
				if t0, ok := openT[r.Ep]; ok && cutBy[r.Ep] == 1 {
					st.openCut = append(st.openCut, float64(r.TNs-t0)/1e9)
				}
			}
		}
	}
	for ep := range openT {
		if cutBy[ep] == 0 {
			st.orphans++
		}
	}
	return st
}

type timeline struct {
	node, flow int32
	ts, vs     []float64 // seconds, bytes/s after each rate decision
}

// timelines reconstructs each flow's rate trajectory from its rate
// decisions, in (node, flow) order.
func timelines(recs []rec) []*timeline {
	byKey := make(map[[2]int32]*timeline)
	var order [][2]int32
	for _, r := range recs {
		if !rateDecs[r.Dec] {
			continue
		}
		k := [2]int32{r.Node, r.Flow}
		tl := byKey[k]
		if tl == nil {
			tl = &timeline{node: r.Node, flow: r.Flow}
			byKey[k] = tl
			order = append(order, k)
		}
		tl.ts = append(tl.ts, float64(r.TNs)/1e9)
		tl.vs = append(tl.vs, r.New)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	out := make([]*timeline, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

type oscStats struct {
	amp    float64 // mean peak-to-trough swing
	period float64 // mean peak-to-peak spacing, seconds
	cycles int     // confirmed peaks
}

// oscillation runs hysteresis-based peak/trough detection (zigzag with a
// band of 10% of the signal range): an extremum only counts once the
// signal retraces by more than the band, so sample noise within the band
// never fabricates cycles.
func oscillation(ts, vs []float64) oscStats {
	if len(vs) < 3 {
		return oscStats{}
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	h := 0.1 * (hi - lo)
	if h <= 0 {
		return oscStats{}
	}
	dir := 0 // 0 unknown, 1 rising (hunting a peak), -1 falling
	maxV, maxT := vs[0], ts[0]
	minV := vs[0]
	var peakT, peakV, troughV []float64
	for i := 1; i < len(vs); i++ {
		t, v := ts[i], vs[i]
		if v > maxV {
			maxV, maxT = v, t
		}
		if v < minV {
			minV = v
		}
		switch {
		case dir >= 0 && maxV-v > h:
			peakT = append(peakT, maxT)
			peakV = append(peakV, maxV)
			dir = -1
			minV = v
		case dir <= 0 && v-minV > h:
			if dir == -1 {
				troughV = append(troughV, minV)
			}
			dir = 1
			maxV, maxT = v, t
		}
	}
	st := oscStats{cycles: len(peakT)}
	if len(peakT) >= 2 {
		var gaps []float64
		for i := 1; i < len(peakT); i++ {
			gaps = append(gaps, peakT[i]-peakT[i-1])
		}
		st.period = mean(gaps)
	}
	if len(peakV) > 0 && len(troughV) > 0 {
		st.amp = mean(peakV) - mean(troughV)
	}
	return st
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// readQueueProbe extracts the first queue_bytes series from a probe JSONL
// export (sweep-prefixed names match by suffix/substring).
func readQueueProbe(path string) (ts, vs []float64, name string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var p struct {
			Probe string   `json:"probe"`
			T     *float64 `json:"t"`
			V     float64  `json:"v"`
		}
		if err := json.Unmarshal(line, &p); err != nil || p.Probe == "" || p.T == nil {
			continue // header, dropped-count trailer, or foreign record
		}
		if !strings.Contains(p.Probe, "queue_bytes") {
			continue
		}
		if name == "" {
			name = p.Probe
		}
		if p.Probe != name {
			continue // only the first queue series
		}
		ts = append(ts, *p.T)
		vs = append(vs, p.V)
	}
	return ts, vs, name, sc.Err()
}

// fluidCompare linearises the DCQCN fluid model at the same operating
// point and compares its predicted oscillation period (2π over the gain
// crossover frequency) with the measured rate/queue periods.
func fluidCompare(w io.Writer, n int, bw, delay, kminB, kmaxB, pmax, ratePeriod, queuePeriod float64) error {
	p := ecndelay.DefaultDCQCNParams(n)
	p.C = bw / ecndelay.DataMTU // packets/s
	p.Kmin = kminB / ecndelay.DataMTU
	p.Kmax = kmaxB / ecndelay.DataMTU
	p.Pmax = pmax
	if delay > 0 {
		p.TauStar = delay
	}
	loop, err := ecndelay.NewDCQCNLoop(p)
	if err != nil {
		return err
	}
	res, err := ecndelay.PhaseMargin(loop)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nfluid model (n=%d, C=%.2g B/s, τ*=%.1fµs): phase margin %.1f°",
		n, bw, p.TauStar*1e6, res.PhaseMarginDeg)
	if res.CrossoverRadPerSec <= 0 {
		fmt.Fprintf(w, ", no gain crossover — loop predicted unconditionally stable, no oscillation period to compare\n")
		return nil
	}
	pred := 2 * math.Pi / res.CrossoverRadPerSec
	fmt.Fprintf(w, ", crossover %.3g rad/s → predicted period %.1fµs\n", res.CrossoverRadPerSec, pred*1e6)
	for _, m := range []struct {
		name   string
		period float64
	}{{"rate", ratePeriod}, {"queue", queuePeriod}} {
		if m.period > 0 {
			fmt.Fprintf(w, "  measured %s period %.1fµs = %.2f× predicted\n",
				m.name, m.period*1e6, m.period/pred)
		}
	}
	fmt.Fprintf(w, "  measured feedback delay feeds τ*: predicted period scales with it (Figure 4's lesson)\n")
	return nil
}

// writeRates exports the per-flow rate timelines as JSONL, one record per
// rate decision, flows in (node, flow) order — byte-stable for identical
// audits.
func writeRates(path string, tls []*timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	var buf []byte
	for _, tl := range tls {
		for i := range tl.ts {
			buf = buf[:0]
			buf = append(buf, `{"node":`...)
			buf = strconv.AppendInt(buf, int64(tl.node), 10)
			buf = append(buf, `,"flow":`...)
			buf = strconv.AppendInt(buf, int64(tl.flow), 10)
			buf = append(buf, `,"t":`...)
			buf = strconv.AppendFloat(buf, tl.ts[i], 'g', -1, 64)
			buf = append(buf, `,"rate":`...)
			buf = strconv.AppendFloat(buf, tl.vs[i], 'g', -1, 64)
			buf = append(buf, '}', '\n')
			if _, err := bw.Write(buf); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
