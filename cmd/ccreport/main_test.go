package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecndelay/internal/des"
	"ecndelay/internal/obs"
)

// writeAudit serialises decisions through the real sink so the test file
// has exactly the bytes a -audit run would produce.
func writeAudit(t *testing.T, dir string, hdr *obs.Header, decs []obs.Decision) string {
	t.Helper()
	path := filepath.Join(dir, "audit.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	s := obs.NewAuditJSONLSink(f, len(decs))
	if hdr != nil {
		s.SetHeader(*hdr)
	}
	for _, d := range decs {
		s.Decision(d)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sawtoothAudit builds one mark episode feeding a flow whose rate swings
// 1 Gb/s → 0.5 Gb/s repeatedly: enough cycles for the oscillation
// detector, every cut attributed.
func sawtoothAudit() []obs.Decision {
	decs := []obs.Decision{
		{T: des.Time(1000), Type: obs.DecMarkOpen, Node: 9, Episode: 7, QBytes: 60000},
		{T: des.Time(900000), Type: obs.DecMarkClose, Node: 9, Episode: 7},
	}
	var seq uint64
	for i := 0; i < 4; i++ {
		base := des.Time(10000 + i*200000)
		decs = append(decs,
			obs.Decision{T: base, Type: obs.DecRateCut, Node: 1, Flow: 3, Seq: seq,
				Episode: 7, OldRate: 1e9, NewRate: 5e8, RTT: 90e-6},
			obs.Decision{T: base + 100000, Type: obs.DecAdditiveInc, Node: 1, Flow: 3, Seq: seq + 1,
				OldRate: 5e8, NewRate: 1e9},
		)
		seq += 2
	}
	return decs
}

func TestRunFullReport(t *testing.T) {
	dir := t.TempDir()
	hdr := &obs.Header{Schema: "audit", Version: 1, Seed: 42, Proto: "dcqcn", Flags: "n=10"}
	audit := writeAudit(t, dir, hdr, sawtoothAudit())
	rates := filepath.Join(dir, "rates.jsonl")

	var out, errb bytes.Buffer
	code := run([]string{"-audit", audit, "-rates", rates, "-require-attributed"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, frag := range []string{
		"v1 seed=42 proto=dcqcn",
		`flags="n=10"`,
		"attribution: 4 rate cuts, 4 attributed, 0 unattributed; 1 mark episodes, 0 orphaned",
		"mark→rate-cut latency: p50 90.0µs",
		"episode-open→first-cut latency:",
		"rate timelines: 1 flows",
		"oscillating:",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("report missing %q; got:\n%s", frag, got)
		}
	}

	data, err := os.ReadFile(rates)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("rates export has %d lines, want 8 (one per rate decision)", len(lines))
	}
	var r struct {
		Node int32   `json:"node"`
		Flow int32   `json:"flow"`
		T    float64 `json:"t"`
		Rate float64 `json:"rate"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatalf("rates line is not valid JSON: %v", err)
	}
	if r.Node != 1 || r.Flow != 3 || r.Rate != 5e8 {
		t.Errorf("first rates record = %+v, want node 1 flow 3 rate 5e8", r)
	}
}

// A cut with no episode fails -require-attributed (exit 1) but still
// reports normally without the gate (exit 0).
func TestRunRequireAttributed(t *testing.T) {
	dir := t.TempDir()
	decs := append(sawtoothAudit(),
		obs.Decision{T: des.Time(950000), Type: obs.DecRateCut, Node: 2, Flow: 0,
			OldRate: 1e9, NewRate: 5e8}) // Episode 0: unattributed
	audit := writeAudit(t, dir, nil, decs)

	var out, errb bytes.Buffer
	if code := run([]string{"-audit", audit}, &out, &errb); code != 0 {
		t.Fatalf("ungated exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "5 rate cuts, 4 attributed, 1 unattributed") {
		t.Errorf("report miscounted attribution:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-audit", audit, "-require-attributed"}, &out, &errb); code != 1 {
		t.Fatalf("gated exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "1 of 5 rate cuts unattributed") {
		t.Errorf("gate failure message missing; stderr: %s", errb.String())
	}
}

// Exports without a header line (older files, hand-built streams) are
// still analysed.
func TestRunToleratesMissingHeader(t *testing.T) {
	dir := t.TempDir()
	audit := writeAudit(t, dir, nil, sawtoothAudit())
	var out, errb bytes.Buffer
	if code := run([]string{"-audit", audit}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "(no header)") {
		t.Errorf("report should note the absent header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "4 attributed") {
		t.Errorf("records after a missing header were not analysed:\n%s", out.String())
	}
}

func TestRunOrphanedEpisodes(t *testing.T) {
	dir := t.TempDir()
	decs := []obs.Decision{
		{T: des.Time(1000), Type: obs.DecMarkOpen, Node: 9, Episode: 7},
		{T: des.Time(2000), Type: obs.DecMarkOpen, Node: 9, Episode: 8},
		{T: des.Time(90000), Type: obs.DecRateCut, Node: 1, Episode: 7, OldRate: 1e9, NewRate: 5e8},
	}
	audit := writeAudit(t, dir, nil, decs)
	var out, errb bytes.Buffer
	if code := run([]string{"-audit", audit}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2 mark episodes, 1 orphaned") {
		t.Errorf("orphan bookkeeping wrong:\n%s", out.String())
	}
}

func TestRunFluidComparison(t *testing.T) {
	dir := t.TempDir()
	audit := writeAudit(t, dir, nil, sawtoothAudit())
	var out, errb bytes.Buffer
	code := run([]string{"-audit", audit, "-fluid-n", "10", "-fluid-bw", "5e9"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "fluid model (n=10") {
		t.Errorf("fluid comparison missing:\n%s", got)
	}
	// τ* defaults to the measured p50 mark→cut (90µs here).
	if !strings.Contains(got, "τ*=90.0µs") {
		t.Errorf("fluid τ* should default to measured p50 mark→cut:\n%s", got)
	}
	if !strings.Contains(got, "measured rate period") {
		t.Errorf("measured-vs-predicted line missing:\n%s", got)
	}
}

func TestRunQueueProbeSeries(t *testing.T) {
	dir := t.TempDir()
	audit := writeAudit(t, dir, nil, sawtoothAudit())
	probe := filepath.Join(dir, "probes.jsonl")
	var sb strings.Builder
	sb.WriteString(`{"schema":"probe","v":1,"seed":1,"proto":"dcqcn","flags":""}` + "\n")
	for i := 0; i < 12; i++ {
		v := 10000
		if i%2 == 1 {
			v = 90000
		}
		sb.WriteString(`{"probe":"port.n9.queue_bytes","t":` +
			jsonFloat(float64(i)*1e-4) + `,"v":` + jsonFloat(float64(v)) + "}\n")
	}
	if err := os.WriteFile(probe, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-audit", audit, "-probe", probe}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, `queue series "port.n9.queue_bytes": 12 samples`) {
		t.Errorf("queue probe series not read:\n%s", got)
	}
	if !strings.Contains(got, "oscillating: amplitude 80.0 KB") {
		t.Errorf("queue oscillation not detected:\n%s", got)
	}
}

func jsonFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("missing -audit: exit %d, want 2", code)
	}
	if code := run([]string{"-audit", filepath.Join(t.TempDir(), "nope.jsonl")}, &out, &errb); code != 2 {
		t.Errorf("unreadable audit: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}

	// A file holding only a header has nothing to analyse.
	dir := t.TempDir()
	empty := writeAudit(t, dir, &obs.Header{Schema: "audit", Version: 1}, nil)
	errb.Reset()
	if code := run([]string{"-audit", empty}, &out, &errb); code != 2 {
		t.Errorf("record-free audit: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no decision records") {
		t.Errorf("record-free audit message missing; stderr: %s", errb.String())
	}
}
