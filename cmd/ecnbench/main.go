// Command ecnbench regenerates the paper's tables and figures. Each
// experiment is addressed by the id of the table/figure it reproduces:
//
//	ecnbench -list
//	ecnbench -exp fig14
//	ecnbench -exp fig3,fig11 -full
//	ecnbench -exp all -full
//
// Quick mode (default) runs down-scaled versions; -full runs paper-scale
// experiments (the FCT sweeps take a few minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ecndelay"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "experiment id, comma list, or 'all'")
		full    = flag.Bool("full", false, "run paper-scale experiments instead of quick versions")
		seed    = flag.Int64("seed", 1, "simulation seed")
		list    = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-28s %s\n", "ID", "REPRODUCES", "TITLE")
		for _, r := range ecndelay.Runners() {
			fmt.Printf("%-8s %-28s %s\n", r.ID, r.Figure, r.Title)
		}
		return
	}

	opts := ecndelay.ExperimentOptions{Scale: ecndelay.Quick, Seed: *seed}
	if *full {
		opts.Scale = ecndelay.Full
	}

	var selected []ecndelay.Experiment
	if *expFlag == "all" {
		selected = ecndelay.Runners()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			r, ok := ecndelay.GetRunner(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "ecnbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	failed := 0
	for _, r := range selected {
		t0 := time.Now()
		rep, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecnbench: %s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		rep.Render(os.Stdout)
		fmt.Printf("[%s: %.1fs]\n\n", r.ID, time.Since(t0).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
