// Command ecnbench regenerates the paper's tables and figures. Each
// experiment is addressed by the id of the table/figure it reproduces:
//
//	ecnbench -list
//	ecnbench -exp fig14
//	ecnbench -exp fig3,fig11 -full
//	ecnbench -exp all -full -workers 8
//
// Quick mode (default) runs down-scaled versions; -full runs paper-scale
// experiments (the FCT sweeps take a few minutes, so -workers > 1 pays
// off there). Reports always print in selection order, whatever order
// the experiments finish in.
//
// Exit status: 0 on success, 1 if any experiment failed, 2 on bad usage
// (including an unknown experiment id).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecndelay"
	"ecndelay/internal/prof"
)

// shutdownOnSignal drains the telemetry server with a bounded deadline
// before the process dies on SIGINT/SIGTERM, so in-flight scrapes
// complete instead of being cut mid-body. The returned stop func
// detaches the handler on the normal exit path.
func shutdownOnSignal(srv *ecndelay.TelemetryServer, stderr io.Writer) func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case s := <-ch:
			fmt.Fprintf(stderr, "ecnbench: %v: draining telemetry server\n", s)
			_ = srv.Shutdown(5 * time.Second)
			os.Exit(1)
		case <-done:
		}
	}()
	return func() { signal.Stop(ch); close(done) }
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ecnbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag    = fs.String("exp", "all", "experiment id, comma list, or 'all'")
		full       = fs.Bool("full", false, "run paper-scale experiments instead of quick versions")
		seed       = fs.Int64("seed", 1, "simulation seed")
		list       = fs.Bool("list", false, "list available experiments and exit")
		workers    = fs.Int("workers", 1, "experiments to run concurrently (0: GOMAXPROCS)")
		shards     = fs.Int("shards", 1, "worker shards inside each packet-level experiment (1: serial)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")

		metricsFile = fs.String("metrics", "", "write end-of-run counters as TSV to this file")
		traceFile   = fs.String("trace", "", "stream the event trace as JSONL to this file")
		probeFile   = fs.String("probe", "", "write probe time series as JSONL to this file")
		probeEvery  = fs.Float64("probe-every", 1e-4, "probe sampling cadence, seconds")
		invariants  = fs.Bool("invariants", false, "check runtime invariants; violations exit nonzero")
		histFile    = fs.String("hist", "", "write latency histogram percentiles to this file (.tsv: TSV, else JSONL)")
		auditFile   = fs.String("audit", "", "write the control-loop decision audit as JSONL to this file")
		serveAddr   = fs.String("serve", "", "serve live telemetry (/metrics, /progress, pprof) on this host:port")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Self-describing header for every JSONL export; fs.Visit walks only
	// explicitly set flags, in name order. Proto is empty: experiments mix
	// protocols, and each decision record names its own type.
	header := func(schema string) ecndelay.ExportHeader {
		var parts []string
		fs.Visit(func(f *flag.Flag) {
			parts = append(parts, f.Name+"="+f.Value.String())
		})
		return ecndelay.ExportHeader{
			Schema: schema, Version: 1, Seed: *seed,
			Flags: strings.Join(parts, " "),
		}
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "ecnbench: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(stderr, "ecnbench: %v\n", err)
		}
	}()

	if *list {
		fmt.Fprintf(stdout, "%-8s %-28s %s\n", "ID", "REPRODUCES", "TITLE")
		for _, r := range ecndelay.Runners() {
			fmt.Fprintf(stdout, "%-8s %-28s %s\n", r.ID, r.Figure, r.Title)
		}
		return 0
	}

	opts := ecndelay.ExperimentOptions{Scale: ecndelay.Quick, Seed: *seed, Shards: *shards}
	if *full {
		opts.Scale = ecndelay.Full
	}

	// One shared observer serves every selected experiment (and worker):
	// counters are atomic, the tracer and checker serialise internally,
	// and the checker keeps per-network books, so metrics and invariant
	// verdicts are the same for any -workers value. Probe series carry the
	// experiment id as a name prefix (see JobObserver) and export
	// deterministically; only the -trace stream interleaves experiments
	// by completion order, so byte-stable traces need -workers 1.
	var observer *ecndelay.Observer
	var traceSink *ecndelay.TraceJSONLSink
	var auditSink *ecndelay.AuditJSONLSink
	if *metricsFile != "" || *traceFile != "" || *probeFile != "" || *invariants ||
		*histFile != "" || *serveAddr != "" || *auditFile != "" {
		observer = &ecndelay.Observer{ProbeEvery: ecndelay.DurationFromSeconds(*probeEvery)}
		if *metricsFile != "" || *serveAddr != "" {
			observer.Metrics = ecndelay.NewMetricsRegistry()
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(stderr, "ecnbench: %v\n", err)
				return 2
			}
			traceSink = ecndelay.NewTraceJSONLSink(f)
			traceSink.WriteHeader(header("trace"))
			observer.Trace = ecndelay.NewTracer(traceSink)
		}
		if *probeFile != "" {
			observer.Probes = ecndelay.NewProbeSet()
			observer.Probes.SetHeader(header("probe"))
		}
		if *invariants {
			observer.Check = ecndelay.NewInvariantChecker()
		}
		if *histFile != "" || *serveAddr != "" || *auditFile != "" {
			observer.Hists = ecndelay.NewHistSet()
		}
		if *auditFile != "" {
			// One shared trail: decisions from concurrently running
			// experiments interleave under the trail's lock, and the sink
			// sorts into canonical order on Close, so the file is
			// byte-identical for any -workers value.
			f, err := os.Create(*auditFile)
			if err != nil {
				fmt.Fprintf(stderr, "ecnbench: %v\n", err)
				return 2
			}
			auditSink = ecndelay.NewAuditJSONLSink(f, 1<<16)
			auditSink.SetHeader(header("audit"))
			observer.Audit = ecndelay.NewAuditTrail(auditSink)
		}
		opts.Observer = observer
	}

	var status *ecndelay.SweepStatus
	if *serveAddr != "" {
		status = ecndelay.NewSweepStatus()
		srv := ecndelay.NewTelemetryServer(observer)
		srv.SetProgress(func() any { return status.Snapshot() })
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(stderr, "ecnbench: %v\n", err)
			return 2
		}
		defer srv.Shutdown(2 * time.Second)
		defer shutdownOnSignal(srv, stderr)()
		fmt.Fprintf(stderr, "ecnbench: serving telemetry on http://%s\n", addr)
	}

	var selected []ecndelay.Experiment
	if *expFlag == "all" {
		selected = ecndelay.Runners()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			r, ok := ecndelay.GetRunner(id)
			if !ok {
				fmt.Fprintf(stderr, "ecnbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, r)
		}
	}

	// Each experiment is one sweep job; the renderSink streams reports
	// to stdout in selection order as they complete. Every runner gets
	// the same -seed, as the serial version always did.
	reports := make([]*ecndelay.Report, len(selected))
	elapsed := make([]time.Duration, len(selected))
	jobs := make([]ecndelay.SweepJob, len(selected))
	for i, r := range selected {
		i, r := i, r
		jobs[i] = ecndelay.SweepJob{
			ID: r.ID,
			Run: func(int64) (map[string]float64, error) {
				t0 := time.Now()
				o := opts
				o.Observer = ecndelay.JobObserver(opts.Observer, r.ID)
				rep, err := r.Run(o)
				elapsed[i] = time.Since(t0)
				if err != nil {
					return nil, err
				}
				reports[i] = rep
				return rep.Metrics, nil
			},
		}
	}
	sink := &renderSink{reports: reports, elapsed: elapsed, stdout: stdout, stderr: stderr}
	var progress io.Writer
	if *workers != 1 {
		progress = stderr
	}
	if _, err := ecndelay.RunSweep(ecndelay.SweepConfig{
		Workers: *workers, BaseSeed: *seed, Progress: progress, Status: status,
	}, jobs, sink); err != nil {
		fmt.Fprintf(stderr, "ecnbench: %v\n", err)
		return 1
	}
	if observer != nil {
		if code := finishObs(observer, traceSink, auditSink, *metricsFile, *probeFile, *histFile, stderr); code != 0 {
			return code
		}
	}
	if sink.failed > 0 {
		return 1
	}
	return 0
}

// finishObs flushes the observability outputs and reports invariant
// violations; returns a nonzero exit code on failure.
func finishObs(o *ecndelay.Observer, trace *ecndelay.TraceJSONLSink, audit *ecndelay.AuditJSONLSink, metricsPath, probePath, histPath string, stderr io.Writer) int {
	if trace != nil {
		if err := trace.Close(); err != nil {
			fmt.Fprintf(stderr, "ecnbench: %v\n", err)
			return 1
		}
	}
	if audit != nil {
		if err := audit.Close(); err != nil {
			fmt.Fprintf(stderr, "ecnbench: %v\n", err)
			return 1
		}
	}
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if metricsPath != "" {
		if err := write(metricsPath, o.Metrics.WriteTSV); err != nil {
			fmt.Fprintf(stderr, "ecnbench: %v\n", err)
			return 1
		}
	}
	if probePath != "" {
		if err := write(probePath, o.Probes.WriteJSONL); err != nil {
			fmt.Fprintf(stderr, "ecnbench: %v\n", err)
			return 1
		}
	}
	if histPath != "" {
		fn := o.Hists.WriteJSONL
		if strings.HasSuffix(histPath, ".tsv") {
			fn = o.Hists.WriteTSV
		}
		if err := write(histPath, fn); err != nil {
			fmt.Fprintf(stderr, "ecnbench: %v\n", err)
			return 1
		}
	}
	if c := o.Check; c != nil && c.Total() > 0 {
		for _, v := range c.Violations() {
			fmt.Fprintf(stderr, "ecnbench: invariant violation: %s\n", v)
		}
		fmt.Fprintf(stderr, "ecnbench: %d invariant violation(s)\n", c.Total())
		return 1
	}
	return 0
}

// renderSink renders experiment reports in submission order while
// results arrive in completion order: out-of-order results are buffered
// until their predecessors land. The engine delivers results from a
// single goroutine, so no locking is needed.
type renderSink struct {
	reports []*ecndelay.Report
	elapsed []time.Duration
	stdout  io.Writer
	stderr  io.Writer

	buf    map[int]ecndelay.SweepResult
	next   int
	failed int
}

func (s *renderSink) Completed(string) bool { return false }

func (s *renderSink) Write(r ecndelay.SweepResult) error {
	if s.buf == nil {
		s.buf = make(map[int]ecndelay.SweepResult)
	}
	s.buf[r.Index] = r
	for {
		rr, ok := s.buf[s.next]
		if !ok {
			return nil
		}
		delete(s.buf, s.next)
		s.next++
		if rr.Err != "" {
			fmt.Fprintf(s.stderr, "ecnbench: %s failed: %s\n", rr.JobID, rr.Err)
			s.failed++
			continue
		}
		s.reports[rr.Index].Render(s.stdout)
		fmt.Fprintf(s.stdout, "[%s: %.1fs]\n\n", rr.JobID, s.elapsed[rr.Index].Seconds())
	}
}
