package main

import (
	"strings"
	"testing"
)

func TestListExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig3", "fig14", "extpfc"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

// A bad -exp value must not look like success in scripts/CI.
func TestUnknownExperimentExitsNonZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown experiment exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), `unknown experiment "nope"`) {
		t.Errorf("stderr = %q", errOut.String())
	}
	// ... including when buried in a comma list.
	if code := run([]string{"-exp", "fig3,nope"}, &out, &errOut); code != 2 {
		t.Fatalf("comma-list exit code %d, want 2", code)
	}
}

func TestBadFlagExitsNonZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exit code %d, want 2", code)
	}
}

func TestQuickExperimentRuns(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig3,eq14"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	// Reports render in selection order with their timing lines.
	i, j := strings.Index(text, "=== fig3"), strings.Index(text, "=== eq14")
	if i < 0 || j < 0 || i > j {
		t.Errorf("reports missing or out of order:\n%s", text)
	}
	if !strings.Contains(text, "[fig3:") || !strings.Contains(text, "[eq14:") {
		t.Errorf("timing lines missing:\n%s", text)
	}
}

// With -workers > 1 the same experiments still render in selection
// order, and the run still succeeds.
func TestParallelWorkersOrderedOutput(t *testing.T) {
	serial := func() string {
		var out, errOut strings.Builder
		if code := run([]string{"-exp", "fig3,fig11,eq14,thm2"}, &out, &errOut); code != 0 {
			t.Fatalf("serial exit code %d, stderr: %s", code, errOut.String())
		}
		return out.String()
	}()
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig3,fig11,eq14,thm2", "-workers", "4"}, &out, &errOut); code != 0 {
		t.Fatalf("parallel exit code %d, stderr: %s", code, errOut.String())
	}
	// Timing lines carry wall-clock values, so compare the order of the
	// report headers rather than raw bytes.
	order := func(s string) []int {
		var idx []int
		for _, h := range []string{"=== fig3", "=== fig11", "=== eq14", "=== thm2"} {
			idx = append(idx, strings.Index(s, h))
		}
		return idx
	}
	so, po := order(serial), order(out.String())
	for k := range so {
		if so[k] < 0 || po[k] < 0 {
			t.Fatalf("missing report header %d:\n%s", k, out.String())
		}
		if k > 0 && (so[k] < so[k-1] || po[k] < po[k-1]) {
			t.Fatalf("reports out of order (serial %v, parallel %v)", so, po)
		}
	}
}
