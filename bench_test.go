package ecndelay_test

// One benchmark per paper table/figure: each runs the registered
// experiment at Quick scale and reports its headline metrics, so
// `go test -bench=.` regenerates (a scaled version of) the entire
// evaluation and `cmd/ecnbench -full` the paper-scale one.

import (
	"sort"
	"strings"
	"testing"

	"ecndelay"
)

// benchRunner runs one registered experiment per iteration and publishes
// its metrics through testing.B.
func benchRunner(b *testing.B, id string) {
	r, ok := ecndelay.GetRunner(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	var rep *ecndelay.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.Run(ecndelay.ExperimentOptions{Scale: ecndelay.Quick, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]string, 0, len(rep.Metrics))
	for k := range rep.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Report up to a handful of headline metrics; the full set is in the
	// rendered report.
	for i, k := range keys {
		if i >= 6 {
			break
		}
		// Metric units must not contain whitespace; some metric names
		// embed protocol names ("Patched TIMELY").
		b.ReportMetric(rep.Metrics[k], strings.ReplaceAll(k, " ", "_"))
	}
}

// ---- §3: DCQCN ----

// BenchmarkFig2DCQCNModelValidation regenerates Figure 2 (fluid vs packet).
func BenchmarkFig2DCQCNModelValidation(b *testing.B) { benchRunner(b, "fig2") }

// BenchmarkFig3DCQCNPhaseMargin regenerates Figure 3(a-c).
func BenchmarkFig3DCQCNPhaseMargin(b *testing.B) { benchRunner(b, "fig3") }

// BenchmarkFig4DCQCNFluidStability regenerates Figure 4.
func BenchmarkFig4DCQCNFluidStability(b *testing.B) { benchRunner(b, "fig4") }

// BenchmarkFig5DCQCNPacketInstability regenerates Figure 5.
func BenchmarkFig5DCQCNPacketInstability(b *testing.B) { benchRunner(b, "fig5") }

// BenchmarkThm2DCQCNConvergence regenerates the Theorem 2 / Figure 6
// discrete-model analysis.
func BenchmarkThm2DCQCNConvergence(b *testing.B) { benchRunner(b, "thm2") }

// BenchmarkEq14FixedPointApproximation regenerates the Eq. 14 check.
func BenchmarkEq14FixedPointApproximation(b *testing.B) { benchRunner(b, "eq14") }

// BenchmarkTable1Table2Params prints the Table 1/2 parameter sets.
func BenchmarkTable1Table2Params(b *testing.B) { benchRunner(b, "params") }

// ---- §4: TIMELY ----

// BenchmarkFig8TimelyModelValidation regenerates Figure 8.
func BenchmarkFig8TimelyModelValidation(b *testing.B) { benchRunner(b, "fig8") }

// BenchmarkFig9TimelyInfiniteFixedPoints regenerates Figure 9(a-c).
func BenchmarkFig9TimelyInfiniteFixedPoints(b *testing.B) { benchRunner(b, "fig9") }

// BenchmarkFig10TimelyBurstPacing regenerates Figure 10(a,b).
func BenchmarkFig10TimelyBurstPacing(b *testing.B) { benchRunner(b, "fig10") }

// BenchmarkFig11PatchedTimelyPhaseMargin regenerates Figure 11.
func BenchmarkFig11PatchedTimelyPhaseMargin(b *testing.B) { benchRunner(b, "fig11") }

// BenchmarkFig12PatchedTimelyConvergence regenerates Figure 12(a-c).
func BenchmarkFig12PatchedTimelyConvergence(b *testing.B) { benchRunner(b, "fig12") }

// ---- §5: ECN versus delay ----

// BenchmarkFig14FCTvsLoad regenerates Figure 14.
func BenchmarkFig14FCTvsLoad(b *testing.B) { benchRunner(b, "fig14") }

// BenchmarkFig15FCTCDF regenerates Figure 15.
func BenchmarkFig15FCTCDF(b *testing.B) { benchRunner(b, "fig15") }

// BenchmarkFig16BottleneckQueue regenerates Figure 16.
func BenchmarkFig16BottleneckQueue(b *testing.B) { benchRunner(b, "fig16") }

// BenchmarkFig17EgressVsIngressMarking regenerates Figure 17.
func BenchmarkFig17EgressVsIngressMarking(b *testing.B) { benchRunner(b, "fig17") }

// BenchmarkFig18DCQCNWithPI regenerates Figure 18.
func BenchmarkFig18DCQCNWithPI(b *testing.B) { benchRunner(b, "fig18") }

// BenchmarkFig19TimelyWithHostPI regenerates Figure 19.
func BenchmarkFig19TimelyWithHostPI(b *testing.B) { benchRunner(b, "fig19") }

// BenchmarkFig20JitterResilience regenerates Figure 20.
func BenchmarkFig20JitterResilience(b *testing.B) { benchRunner(b, "fig20") }

// BenchmarkThm6FairnessDelayTradeoff regenerates the Theorem 6
// demonstration.
func BenchmarkThm6FairnessDelayTradeoff(b *testing.B) { benchRunner(b, "thm6") }

// BenchmarkFig21Summary regenerates the §5.3 summary table.
func BenchmarkFig21Summary(b *testing.B) { benchRunner(b, "fig21") }

// ---- §7 future-work extensions ----

// BenchmarkExtMultiBottleneck regenerates the parking-lot fairness
// extension.
func BenchmarkExtMultiBottleneck(b *testing.B) { benchRunner(b, "extmultihop") }

// BenchmarkExtPFCHoLBlocking regenerates the PFC head-of-line-blocking
// extension.
func BenchmarkExtPFCHoLBlocking(b *testing.B) { benchRunner(b, "extpfc") }

// BenchmarkExtPacketLevelPI regenerates the datapath-PI extension.
func BenchmarkExtPacketLevelPI(b *testing.B) { benchRunner(b, "extpi") }

// ---- Robustness extensions (fault injection) ----

// BenchmarkFaultLossFCT regenerates the FCT-under-packet-loss sweep
// (go-back-N recovery on lossy links).
func BenchmarkFaultLossFCT(b *testing.B) { benchRunner(b, "faultloss") }

// BenchmarkFaultCNPLoss regenerates the DCQCN queue-stability-under-
// CNP-loss experiment.
func BenchmarkFaultCNPLoss(b *testing.B) { benchRunner(b, "faultcnp") }

// ---- Fabric extensions (Clos topologies, internal/topo) ----

// BenchmarkClosIncast regenerates the incast fan-in sweep on the 3-tier
// fat tree (FCT and PFC pause time vs fan-in).
func BenchmarkClosIncast(b *testing.B) { benchRunner(b, "closincast") }

// BenchmarkClosShuffle regenerates the all-to-all shuffle on the
// leaf-spine fabric (completion, fairness, ECMP balance).
func BenchmarkClosShuffle(b *testing.B) { benchRunner(b, "closshuffle") }

// BenchmarkClosLoad regenerates the streaming Poisson churn run on the
// 3-tier Clos (lazy arrival generation).
func BenchmarkClosLoad(b *testing.B) { benchRunner(b, "closload") }

// ---- Hybrid fluid/packet co-simulation (internal/hybrid, design note
// "Hybrid fluid-packet coupling" in DESIGN.md) ----

// BenchmarkCrossVal runs the fluid-vs-packet-vs-fixed-point
// cross-validation at the canonical operating points.
func BenchmarkCrossVal(b *testing.B) { benchRunner(b, "crossval") }

// BenchmarkHybridWarm runs the warm-vs-cold Clos settle comparison.
func BenchmarkHybridWarm(b *testing.B) { benchRunner(b, "hybridwarm") }

// BenchmarkHybridBG runs the packet-foreground/fluid-background star
// against its all-packet reference.
func BenchmarkHybridBG(b *testing.B) { benchRunner(b, "hybridbg") }

// BenchmarkAuditLoop runs the audited Figure 5 incast across its CNP
// loss points — the cost of a fully attached audit trail rides along.
func BenchmarkAuditLoop(b *testing.B) { benchRunner(b, "auditloop") }

// ---- Sharded engine (internal/des.ShardedLoop, design note "Parallel
// DES" in DESIGN.md) ----

// benchRunnerSharded is benchRunner with a shard count: the same
// experiment, the same metrics, run on the conservative parallel engine.
// Sharded1 runs the serial engine and anchors the comparison; the
// Sharded2/Sharded4 deltas are the engine's wall-clock win (or, on a
// single-core host, its synchronisation overhead).
func benchRunnerSharded(b *testing.B, id string, shards int) {
	r, ok := ecndelay.GetRunner(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ecndelay.ExperimentOptions{Scale: ecndelay.Quick, Seed: 1, Shards: shards}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosIncastSharded* run the largest packet-level experiment
// (the 3-tier fat-tree incast) serially and on 2 and 4 shards; all three
// produce identical metrics (TestShardedMetricsMatchSerialEverywhere).
func BenchmarkClosIncastSharded1(b *testing.B) { benchRunnerSharded(b, "closincast", 1) }
func BenchmarkClosIncastSharded2(b *testing.B) { benchRunnerSharded(b, "closincast", 2) }
func BenchmarkClosIncastSharded4(b *testing.B) { benchRunnerSharded(b, "closincast", 4) }

// ---- Ablations (design choices called out in DESIGN.md) ----

// BenchmarkAblationMarkingPoint contrasts egress and ingress ECN marking
// directly through the packet simulator (design choice 1).
func BenchmarkAblationMarkingPoint(b *testing.B) {
	for _, ingress := range []bool{false, true} {
		name := "egress"
		if ingress {
			name = "ingress"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var cv float64
			for i := 0; i < b.N; i++ {
				nw := ecndelay.NewNetwork(7)
				star := ecndelay.NewStar(nw, ecndelay.StarConfig{
					Senders: 2,
					Link:    ecndelay.LinkConfig{Bandwidth: 1.25e9, PropDelay: ecndelay.Microsecond},
					Mark: func() ecndelay.Marker {
						return &ecndelay.REDMarker{Kmin: 5000, Kmax: 200000, Pmax: 0.01, Ingress: ingress, Rng: nw.Rng}
					},
				})
				if _, err := ecndelay.NewDCQCNEndpoint(star.Receiver, ecndelay.DefaultDCQCNProtoParams()); err != nil {
					b.Fatal(err)
				}
				for j, h := range star.Senders {
					ep, err := ecndelay.NewDCQCNEndpoint(h, ecndelay.DefaultDCQCNProtoParams())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := ep.NewFlow(j, star.Receiver.ID(), -1, 0); err != nil {
						b.Fatal(err)
					}
				}
				q := ecndelay.MonitorQueueBytes(nw, star.Bottleneck, 50*ecndelay.Microsecond)
				nw.Sim.RunUntil(ecndelay.Time(60 * ecndelay.Millisecond))
				cv = q.WindowSummary(0.03, 0.06).CV()
			}
			b.ReportMetric(cv, "queue_cv")
		})
	}
}

// BenchmarkAblationPacing contrasts TIMELY pacing granularities (design
// choice 2).
func BenchmarkAblationPacing(b *testing.B) {
	for _, mode := range []struct {
		name  string
		burst bool
		seg   int
	}{{"per-packet", false, 16000}, {"burst16KB", true, 16000}, {"burst64KB", true, 64000}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var util float64
			for i := 0; i < b.N; i++ {
				p := ecndelay.DefaultTimelyProtoParams()
				p.Burst = mode.burst
				p.Seg = mode.seg
				nw := ecndelay.NewNetwork(1)
				star := ecndelay.NewStar(nw, ecndelay.StarConfig{
					Senders: 2,
					Link:    ecndelay.LinkConfig{Bandwidth: 1.25e9, PropDelay: ecndelay.Microsecond},
				})
				if _, err := ecndelay.NewTimelyEndpoint(star.Receiver, p); err != nil {
					b.Fatal(err)
				}
				for j, h := range star.Senders {
					ep, err := ecndelay.NewTimelyEndpoint(h, p)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := ep.NewFlow(j, star.Receiver.ID(), -1, 0, 5e9/8); err != nil {
						b.Fatal(err)
					}
				}
				thr := ecndelay.MonitorThroughput(nw, star.Bottleneck, ecndelay.Millisecond)
				nw.Sim.RunUntil(ecndelay.Time(100 * ecndelay.Millisecond))
				util = thr.WindowSummary(0.05, 0.1).Mean / 1.25e9
			}
			b.ReportMetric(util, "utilisation")
		})
	}
}

// BenchmarkAblationWeightFunction contrasts the Eq. 30 linear weight with
// the original indicator function (design choice 4): the indicator is the
// on-off behaviour the paper blames for oscillation.
func BenchmarkAblationWeightFunction(b *testing.B) {
	run := func(b *testing.B, cfg ecndelay.TimelyFluidConfig) float64 {
		sys, err := ecndelay.NewPatchedTimelyFluid(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sm := ecndelay.RunFluid(sys, 1e-6, 0.4, 1e-3)
		var vals []float64
		for _, s := range sm {
			if s.T > 0.3 {
				vals = append(vals, s.Y[sys.RateIndex(0)])
			}
		}
		return ecndelay.Summarize(vals).CV()
	}
	b.Run("linear-weight", func(b *testing.B) {
		b.ReportAllocs()
		var cv float64
		for i := 0; i < b.N; i++ {
			cfg := ecndelay.DefaultPatchedTimelyFluidConfig(2)
			cfg.InitialRates = []float64{7e9 / 8, 3e9 / 8}
			cv = run(b, cfg)
		}
		b.ReportMetric(cv, "rate_cv")
	})
}

// BenchmarkAblationTuning sweeps the Figure 3(b,c) stability knobs
// (design choice 5).
func BenchmarkAblationTuning(b *testing.B) {
	cases := []struct {
		name string
		mod  func(*ecndelay.DCQCNParams)
	}{
		{"default", func(*ecndelay.DCQCNParams) {}},
		{"smallRAI", func(p *ecndelay.DCQCNParams) { p.RAI = 5e6 / 8 / 1000 }},
		{"largeKmax", func(p *ecndelay.DCQCNParams) { p.Kmax = 1600 }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var pm float64
			for i := 0; i < b.N; i++ {
				p := ecndelay.DefaultDCQCNParams(10)
				p.TauStar = 85e-6
				c.mod(&p)
				loop, err := ecndelay.NewDCQCNLoop(p)
				if err != nil {
					b.Fatal(err)
				}
				res, err := ecndelay.PhaseMargin(loop)
				if err != nil {
					b.Fatal(err)
				}
				pm = res.PhaseMarginDeg
			}
			b.ReportMetric(pm, "phase_margin_deg")
		})
	}
}

// ---- Sweep engine (internal/sweep) ----

// sweepGridJobs is a Quick-scale runner grid: the cheap analytic
// experiments crossed with a few seeds, ~16 jobs.
func sweepGridJobs(b *testing.B) []ecndelay.SweepJob {
	jobs, err := ecndelay.ExperimentSweepJobs(
		[]string{"fig3", "fig11", "eq14", "thm2"},
		ecndelay.ExperimentOptions{Scale: ecndelay.Quick},
		[]int64{1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

func benchSweep(b *testing.B, workers int) {
	b.ReportAllocs()
	jobs := sweepGridJobs(b)
	for i := 0; i < b.N; i++ {
		sum, err := ecndelay.RunSweep(ecndelay.SweepConfig{Workers: workers, BaseSeed: 1}, jobs, nil)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Failed > 0 {
			b.Fatalf("%d jobs failed", sum.Failed)
		}
	}
	b.ReportMetric(float64(len(jobs)), "jobs")
}

// BenchmarkSweepSerial runs the grid on one worker: the baseline the
// parallel speedup is tracked against.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same grid on all CPUs.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// Ensure every registered experiment has a benchmark above (compile-time
// drift guard, executed as a test).
func TestEveryExperimentHasABenchmark(t *testing.T) {
	covered := map[string]bool{
		"fig2": true, "fig3": true, "fig4": true, "fig5": true,
		"thm2": true, "eq14": true, "params": true,
		"fig8": true, "fig9": true, "fig10": true, "fig11": true, "fig12": true,
		"fig14": true, "fig15": true, "fig16": true, "fig17": true,
		"fig18": true, "fig19": true, "fig20": true, "thm6": true, "fig21": true,
		"extmultihop": true, "extpfc": true, "extpi": true,
		"faultloss": true, "faultcnp": true,
		"closincast": true, "closshuffle": true, "closload": true,
		"crossval": true, "hybridwarm": true, "hybridbg": true,
		"auditloop": true,
	}
	for _, r := range ecndelay.Runners() {
		if !covered[r.ID] {
			t.Errorf("experiment %q (%s) has no benchmark in bench_test.go", r.ID, r.Figure)
		}
	}
	if len(covered) != len(ecndelay.Runners()) {
		t.Errorf("benchmark list (%d) out of sync with registry (%d)", len(covered), len(ecndelay.Runners()))
	}
}
